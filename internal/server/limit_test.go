package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/table"
	"repro/internal/testutil"
	"repro/internal/workloads"
)

// The serving half of the truncation battery: mcsd LIMIT/OFFSET
// results must be byte-identical to a direct unlimited
// engine.RunContext run sliced to [offset, offset+limit), on both the
// uncached (plan search) and cached (replay) paths, with the plan
// cache keyed so truncated and full plans never collide. The
// duplicate-fraction dimension is covered by the engine-layer battery
// (internal/engine/limit_test.go); TPC-H data feeds this one.

// sliceServerOracle applies the engine's LIMIT/OFFSET slicing to a
// canonical full result: ranked rows for window queries, the group
// table otherwise.
func sliceServerOracle(full *engine.Result, window bool, limit *int, off int) ([]byte, error) {
	cut := func(n int) (int, int) {
		lo := off
		if lo > n {
			lo = n
		}
		hi := n
		if limit != nil && lo+*limit < hi {
			hi = lo + *limit
		}
		return lo, hi
	}
	sliced := &engine.Result{Rows: full.Rows}
	if window {
		lo, hi := cut(len(full.Ranks))
		sliced.Ranks = full.Ranks[lo:hi]
		sliced.RowOids = full.RowOids[lo:hi]
	} else {
		lo, hi := cut(len(full.GroupKeys))
		sliced.GroupKeys = full.GroupKeys[lo:hi]
		sliced.Aggregates = full.Aggregates[lo:hi]
	}
	return canonLimited(canonEngine(sliced))
}

// canonLimited post-processes a canonical encoding so zero-length and
// nil slices compare equal: a truncated run that produced no entries
// omits the field, a sliced oracle holds an empty one.
func canonLimited(enc []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	var data map[string]any
	if err := json.Unmarshal(enc, &data); err != nil {
		return nil, err
	}
	for k, v := range data {
		if arr, ok := v.([]any); ok && len(arr) == 0 {
			delete(data, k)
		}
	}
	return json.Marshal(data)
}

func canonServerLimited(res *QueryResult) ([]byte, error) {
	return canonLimited(canonServer(res))
}

// limitBatteryItems picks a window query (TPC-DS — TPC-H has none), a
// grouped aggregate, and an aggregate-ordered query so all three
// truncation shapes (row rank, group rank, slice-only) are exercised.
func limitBatteryItems(t *testing.T, rows int) ([]workloads.Item, []*table.Table) {
	t.Helper()
	tpch := testTPCH(t, rows)
	tpcds := testTPCDS(t, rows)
	items := append(workloads.TPCHQueries(tpch, ""), workloads.TPCDSQueries(tpcds)...)
	var window, group, agg *workloads.Item
	for i := range items {
		it := items[i]
		switch {
		case it.Query.Window != nil && window == nil:
			window = &items[i]
		case it.Query.OrderByAgg && agg == nil:
			agg = &items[i]
		case it.Query.Window == nil && !it.Query.OrderByAgg && group == nil:
			group = &items[i]
		}
	}
	var out []workloads.Item
	for _, it := range []*workloads.Item{window, group, agg} {
		if it == nil {
			t.Fatal("workloads no longer cover all three truncation shapes")
		}
		out = append(out, *it)
	}
	return out, []*table.Table{tpch, tpcds}
}

// TestLimitDifferentialRun sweeps the in-process Run path (admission +
// plan cache + engine) over workers {1,2,4,8} x K {0,1,100,n-1,n,n+7}
// x offsets {0,3,n}, two passes per point: the first must miss the
// plan cache, the second must hit it — except LIMIT 0, which skips the
// cache entirely — and both must equal the sliced oracle.
func TestLimitDifferentialRun(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	const n = 2000
	items, tables := limitBatteryItems(t, n)
	srv := newTestServer(t, Config{MaxConcurrent: 4}, tables...)
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	for _, it := range items {
		it := it
		t.Run(it.ID, func(t *testing.T) {
			full, err := engine.RunContext(context.Background(), it.Table, it.Query, directOptions(srv, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, k := range []int{0, 1, 100, n - 1, n, n + 7} {
					for _, off := range []int{0, 3, n} {
						k, off := k, off
						want, err := sliceServerOracle(full, it.Query.Window != nil, &k, off)
						if err != nil {
							t.Fatal(err)
						}
						for pass := 0; pass < 2; pass++ {
							req := reqFromQuery(t, it.Table.Name, it.Query, workers)
							lim := k
							req.Limit = &lim
							req.Offset = off
							res, err := srv.Run(context.Background(), req)
							if err != nil {
								t.Fatalf("workers=%d k=%d off=%d pass=%d: %v", workers, k, off, pass, err)
							}
							wantHit := pass == 1 && k > 0
							if res.PlanCacheHit != wantHit {
								t.Errorf("workers=%d k=%d off=%d pass=%d: PlanCacheHit=%v, want %v",
									workers, k, off, pass, res.PlanCacheHit, wantHit)
							}
							got, err := canonServerLimited(res)
							if err != nil {
								t.Fatal(err)
							}
							if !bytes.Equal(got, want) {
								t.Errorf("workers=%d k=%d off=%d pass=%d: diverges from full-sort-then-slice\ngot:  %s\nwant: %s",
									workers, k, off, pass, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestLimitDifferentialHandler replays a reduced sweep through the
// full HTTP handler path (POST /query, job poll, result fetch): the
// wire decoding of limit/offset must reach the engine intact.
func TestLimitDifferentialHandler(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	const n = 2000
	items, tables := limitBatteryItems(t, n)
	srv := newTestServer(t, Config{MaxConcurrent: 4}, tables...)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const workers = 4
	for _, it := range items {
		full, err := engine.RunContext(context.Background(), it.Table, it.Query, directOptions(srv, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 100, n + 7} {
			for _, off := range []int{0, 3} {
				k, off := k, off
				want, err := sliceServerOracle(full, it.Query.Window != nil, &k, off)
				if err != nil {
					t.Fatal(err)
				}
				req := reqFromQuery(t, it.Table.Name, it.Query, workers)
				lim := k
				req.Limit = &lim
				req.Offset = off
				res, err := doQuery(hs.URL, req)
				if err != nil {
					t.Fatalf("%s k=%d off=%d: %v", it.ID, k, off, err)
				}
				got, err := canonServerLimited(res)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s k=%d off=%d: handler result diverges from full-sort-then-slice\ngot:  %s\nwant: %s",
						it.ID, k, off, got, want)
				}
			}
		}
	}
}

// TestLimitPlanCacheKeySeparation pins that distinct (limit, offset)
// pairs occupy distinct plan-cache entries: a full-sort plan replayed
// for a truncated query (or vice versa) would silently produce the
// wrong plan economics even when results stay correct.
func TestLimitPlanCacheKeySeparation(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	items, tables := limitBatteryItems(t, 1000)
	srv := newTestServer(t, Config{MaxConcurrent: 2}, tables...)
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	it := items[0]
	variants := []func(req *QueryRequest){
		func(req *QueryRequest) {},
		func(req *QueryRequest) { lim := 10; req.Limit = &lim },
		func(req *QueryRequest) { lim := 10; req.Limit = &lim; req.Offset = 3 },
		func(req *QueryRequest) { req.Offset = 3 },
	}
	for i, variant := range variants {
		req := reqFromQuery(t, it.Table.Name, it.Query, 1)
		variant(&req)
		res, err := srv.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if res.PlanCacheHit {
			t.Errorf("variant %d: hit the cache on first submission — limit/offset missing from the plan key", i)
		}
	}
}
