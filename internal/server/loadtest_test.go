// Load-test harness: N concurrent clients firing a mixed TPC-H/TPC-DS
// workload at one server. The assertions are the serving layer's
// contract, not throughput numbers: no goroutine leaks after drain,
// queue latency bounded by the run itself, and plan-cache counters
// that stay monotone and account for every lookup.
package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/workloads"
)

func TestLoadMixedWorkload(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()

	tpch := testTPCH(t, 5000)
	tpcds := testTPCDS(t, 4000)
	srv := newTestServer(t, Config{
		MaxConcurrent: 4,
		MaxBytes:      1 << 30, // engage byte accounting without refusals
	}, tpch, tpcds)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// The mix: all TPC-H and TPC-DS queries at varying worker counts.
	var mix []QueryRequest
	for i, it := range workloads.TPCHQueries(tpch, "") {
		mix = append(mix, reqFromQuery(t, tpch.Name, it.Query, 1+i%4))
	}
	for i, it := range workloads.TPCDSQueries(tpcds) {
		mix = append(mix, reqFromQuery(t, tpcds.Name, it.Query, 1+i%4))
	}

	// Phase 1 — warm the plan cache: every mix entry once, sequentially.
	for _, req := range mix {
		if _, err := doQuery(hs.URL, req); err != nil {
			t.Fatalf("warmup %s: %v", req.ID, err)
		}
	}
	warmHits, warmMisses, warmEvict := srv.PlanCache().Stats()
	if warmMisses != int64(len(mix)) {
		t.Errorf("warmup misses = %d, want %d (one per distinct plan key)", warmMisses, len(mix))
	}
	if warmEvict != 0 {
		t.Errorf("warmup evictions = %d, want 0 (cache holds the whole mix)", warmEvict)
	}

	// Phase 2 — the storm: clients × queriesPerClient over the warmed mix.
	const (
		clients          = 16
		queriesPerClient = 8
		queueWaitBound   = 60 * time.Second // generous; catches only unbounded waits
	)
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < queriesPerClient; i++ {
				req := mix[(c*7+i)%len(mix)]
				res, err := doQuery(hs.URL, req)
				if err != nil {
					errCh <- fmt.Errorf("client %d query %d (%s): %w", c, i, req.ID, err)
					return
				}
				if !res.PlanCacheHit {
					errCh <- fmt.Errorf("client %d query %d (%s): plan-cache miss after warmup", c, i, req.ID)
					return
				}
				if wait := time.Duration(res.QueueWaitNS); wait < 0 || wait > queueWaitBound {
					errCh <- fmt.Errorf("client %d query %d (%s): queue wait %v out of [0, %v]", c, i, req.ID, wait, queueWaitBound)
					return
				}
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}

	// Counters are monotone and account exactly: the storm was all hits.
	hits, misses, evict := srv.PlanCache().Stats()
	if hits < warmHits || misses < warmMisses || evict < warmEvict {
		t.Errorf("plan-cache counters went backwards: (%d,%d,%d) -> (%d,%d,%d)",
			warmHits, warmMisses, warmEvict, hits, misses, evict)
	}
	if misses != warmMisses {
		t.Errorf("storm added misses: %d -> %d (every plan was warmed)", warmMisses, misses)
	}
	if want := warmHits + clients*queriesPerClient; hits != want {
		t.Errorf("hits = %d, want %d (every storm query a hit)", hits, want)
	}
	if evict != 0 {
		t.Errorf("evictions = %d, want 0", evict)
	}
}

// TestLoadSubmitDuringShutdown fires clients at a server while it
// drains: every query must terminate (success or a typed refusal),
// never hang, and the drain itself must complete.
func TestLoadSubmitDuringShutdown(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()

	tpch := testTPCH(t, 3000)
	srv := newTestServer(t, Config{MaxConcurrent: 2}, tpch)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	items := workloads.TPCHQueries(tpch, "")
	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				req := reqFromQuery(t, tpch.Name, items[(c+i)%len(items)].Query, 2)
				// Refusals (503 shutting down) are expected mid-drain; hangs
				// and non-typed failures are not. doQuery surfaces both as
				// errors, so just check it returns.
				_, _ = doQuery(hs.URL, req)
			}
		}(c)
	}
	close(start)
	time.Sleep(10 * time.Millisecond) // let some queries land mid-flight
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		t.Errorf("drain did not complete: %v", err)
	}
	wg.Wait()
}
