// BuiltinModel: a fixed, conservative cost-model profile for
// environments where a multi-second calibration run at startup is
// unwanted (CI smoke tests, containers with noisy neighbors). The
// constants are in the same regime as a real calibration on a modern
// x86 server; plan quality degrades gracefully when they are off,
// correctness never depends on them.
package server

import "repro/internal/costmodel"

// BuiltinModel returns a process-independent cost model with fixed
// constants. mcsd uses it under -model builtin; tests use it to keep
// plan choices deterministic across machines.
func BuiltinModel() *costmodel.Model {
	return &costmodel.Model{
		L2:     1 << 21,
		LLC:    1 << 23,
		Fanout: 8,
		C: costmodel.Constants{
			CCache:    2,
			CMem:      60,
			CMassage:  1,
			CScan:     1.5,
			SmallCall: 60,
			SmallElem: 15,
			SmallQuad: 1,
			Bank: map[int]costmodel.BankConstants{
				16: {COverhead: 400, CLinear: 220, COutOfCache: 40},
				32: {COverhead: 400, CLinear: 300, COutOfCache: 55},
				64: {COverhead: 400, CLinear: 420, COutOfCache: 80},
			},
		},
	}
}
