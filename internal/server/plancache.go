// Plan cache: memoizes ROGA plan-search output per query signature so
// repeated queries skip the search entirely (engine.Options.PlanOverride
// carries the cached choice back into RunContext). Entries are keyed by
// everything the search result depends on — table, clause kind, the
// sort-column list with widths and directions, the filter signature
// (filters change the row count the cost model sees), rho, and the
// worker count — and carry the fingerprint of the calibrated cost model
// they were computed under: swapping the model (recalibration, a loaded
// profile) invalidates stale entries on their next lookup instead of
// serving plans priced by dead constants.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/planner"
)

var (
	obsPCHits      = obs.NewCounter("server.plancache_hits")
	obsPCMisses    = obs.NewCounter("server.plancache_misses")
	obsPCEvictions = obs.NewCounter("server.plancache_evictions")
	obsPCSize      = obs.NewGauge("server.plancache_size")
)

// DefaultPlanCacheSize bounds the cache when Config.PlanCacheSize is 0.
const DefaultPlanCacheSize = 256

// ModelFingerprint derives a stable identity for a calibrated cost
// model from its constants and geometry. Two models with identical
// parameters fingerprint identically (JSON marshals map keys sorted),
// so reloading the same profile does not invalidate the cache.
func ModelFingerprint(m *costmodel.Model) string {
	if m == nil {
		return "nil"
	}
	data, err := json.Marshal(m)
	if err != nil {
		// Model is plain data; Marshal cannot fail on it. Degrade to an
		// always-distinct fingerprint rather than panicking in a server.
		return fmt.Sprintf("unmarshalable:%p", m)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// planEntry is one memoized search result with the model fingerprint
// it was computed under and its LRU links.
type planEntry struct {
	key         string
	choice      planner.Choice
	fingerprint string
	prev, next  *planEntry
}

// PlanCache is a bounded, mutex-guarded LRU of plan-search results.
// Hit/miss/eviction counts are kept both as always-on atomics (Stats,
// used by tests and the scheduler) and as obs metrics (visible on
// /metrics once obs is enabled).
type PlanCache struct {
	mu          sync.Mutex
	cap         int
	fingerprint string // fingerprint entries must match to be served
	entries     map[string]*planEntry
	head, tail  *planEntry // head = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewPlanCache returns a cache holding up to capacity entries
// (DefaultPlanCacheSize when capacity <= 0) valid under the given
// model.
func NewPlanCache(capacity int, model *costmodel.Model) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		cap:         capacity,
		fingerprint: ModelFingerprint(model),
		entries:     make(map[string]*planEntry),
	}
}

// SetModel swaps the calibrated model the cache is valid under.
// Entries computed under a different fingerprint are invalidated
// lazily: the next Get on one misses and evicts it.
func (c *PlanCache) SetModel(model *costmodel.Model) {
	c.mu.Lock()
	c.fingerprint = ModelFingerprint(model)
	c.mu.Unlock()
}

// Get returns the memoized choice for key, if present and computed
// under the current model fingerprint. A fingerprint mismatch counts
// as both a miss and an eviction (the stale entry is dropped).
func (c *PlanCache) Get(key string) (planner.Choice, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		c.misses.Add(1)
		obsPCMisses.Inc()
		return planner.Choice{}, false
	}
	if e.fingerprint != c.fingerprint {
		c.removeLocked(e)
		c.misses.Add(1)
		c.evictions.Add(1)
		obsPCMisses.Inc()
		obsPCEvictions.Inc()
		return planner.Choice{}, false
	}
	c.moveToFrontLocked(e)
	c.hits.Add(1)
	obsPCHits.Inc()
	return e.choice, true
}

// Put memoizes choice under key with the current model fingerprint,
// evicting the least recently used entry when the cache is full.
func (c *PlanCache) Put(key string, choice planner.Choice) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.choice = choice
		e.fingerprint = c.fingerprint
		c.moveToFrontLocked(e)
		return
	}
	e := &planEntry{key: key, choice: choice, fingerprint: c.fingerprint}
	c.entries[key] = e
	c.pushFrontLocked(e)
	if len(c.entries) > c.cap {
		lru := c.tail
		c.removeLocked(lru)
		c.evictions.Add(1)
		obsPCEvictions.Inc()
	}
	obsPCSize.Set(int64(len(c.entries)))
}

// Len returns the number of live entries.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit/miss/eviction counts. They are
// monotone for the life of the cache regardless of obs state.
func (c *PlanCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

func (c *PlanCache) pushFrontLocked(e *planEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PlanCache) moveToFrontLocked(e *planEntry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFrontLocked(e)
}

func (c *PlanCache) removeLocked(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(c.entries, e.key)
	obsPCSize.Set(int64(len(c.entries)))
}
