package server

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/planner"
)

func cacheModelA() *costmodel.Model {
	return BuiltinModel()
}

func cacheModelB() *costmodel.Model {
	m := BuiltinModel()
	m.C.CMem *= 2 // recalibration changed a constant
	return m
}

func TestModelFingerprint(t *testing.T) {
	if got, want := ModelFingerprint(cacheModelA()), ModelFingerprint(cacheModelA()); got != want {
		t.Errorf("identical models fingerprint differently: %s vs %s", got, want)
	}
	if ModelFingerprint(cacheModelA()) == ModelFingerprint(cacheModelB()) {
		t.Error("models with different constants share a fingerprint")
	}
	if ModelFingerprint(nil) == ModelFingerprint(cacheModelA()) {
		t.Error("nil model shares a fingerprint with a real one")
	}
	// Recalibrating only the OVC merge discount must invalidate cached
	// plans too: the discount shifts ROGA's round assignments.
	ovc := cacheModelA()
	ovc.C.OVCMergeDiscount = 0.4
	if ModelFingerprint(cacheModelA()) == ModelFingerprint(ovc) {
		t.Error("models differing only in OVCMergeDiscount share a fingerprint")
	}
}

func TestPlanCacheHitMissStats(t *testing.T) {
	c := NewPlanCache(4, cacheModelA())
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k1", planner.Choice{ColOrder: []int{2, 0, 1}, Est: 42})
	choice, ok := c.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(choice.ColOrder) != 3 || choice.ColOrder[0] != 2 || choice.Est != 42 {
		t.Errorf("cached choice mangled: %+v", choice)
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Errorf("Stats = (%d,%d,%d), want (1,1,0)", hits, misses, evictions)
	}
}

func TestPlanCacheUpdateExisting(t *testing.T) {
	c := NewPlanCache(4, cacheModelA())
	c.Put("k", planner.Choice{Est: 1})
	c.Put("k", planner.Choice{Est: 2})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put of one key, want 1", c.Len())
	}
	if choice, _ := c.Get("k"); choice.Est != 2 {
		t.Errorf("Get returned stale choice Est=%g, want 2", choice.Est)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2, cacheModelA())
	c.Put("a", planner.Choice{Est: 1})
	c.Put("b", planner.Choice{Est: 2})
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", planner.Choice{Est: 3}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order not honored")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c (just inserted) missing")
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestPlanCacheModelInvalidation(t *testing.T) {
	c := NewPlanCache(4, cacheModelA())
	c.Put("k", planner.Choice{Est: 1})

	// A recalibration with different constants invalidates lazily.
	c.SetModel(cacheModelB())
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry computed under the old model served after SetModel")
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Errorf("fingerprint-mismatch Get counted %d evictions, want 1", evictions)
	}
	if c.Len() != 0 {
		t.Errorf("stale entry still resident: Len = %d", c.Len())
	}

	// Entries re-learned under the new model hit again.
	c.Put("k", planner.Choice{Est: 2})
	if _, ok := c.Get("k"); !ok {
		t.Error("entry under the new model misses")
	}

	// Reloading an equal model must NOT invalidate (fingerprint equality).
	c.SetModel(cacheModelB())
	if _, ok := c.Get("k"); !ok {
		t.Error("reloading an identical model invalidated the cache")
	}
}
