// Package server is the serving layer over the MCS engine: a
// long-running concurrent query service (`cmd/mcsd`) that loads
// WideTables once, shares them read-only across queries, memoizes ROGA
// plan search in a calibration-aware plan cache, and bounds concurrent
// work with an admission controller built on the PR 3 budget machinery
// (queue with deadline-aware timeouts, worker degradation, typed
// pipeerr.ErrBudgetExceeded refusals, graceful drain on shutdown).
//
// The wire surface is HTTP/JSON on the stdlib mux (http.go): submit a
// query, poll its status, fetch its result, scrape /metrics, probe
// /healthz. Every query that enters through the handler path executes
// through exactly the same engine.RunContext call a direct embedder
// would make, which the differential test battery exploits to prove
// the serving layer never perturbs results (docs/serving.md).
package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/table"
)

var obsTables = obs.NewGauge("server.tables")

// Registry holds the tables a server instance may query. Registration
// warms every column's ByteSlice layout and statistics profile so a
// registered table is effectively immutable: concurrent queries only
// ever read it, which is the property the engine's shared-table
// concurrency contract requires (lazy per-column builds racing from
// two queries would not be safe).
type Registry struct {
	mu     sync.RWMutex
	tables map[string]*table.Table
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*table.Table)}
}

// Register adds t under t.Name, building the ByteSlice representation
// and statistics profile of every column up front. Duplicate names are
// refused.
func (r *Registry) Register(t *table.Table) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("server: register: table must be named")
	}
	for _, col := range t.Columns() {
		if _, err := t.ByteSlice(col); err != nil {
			return fmt.Errorf("server: register %s: %w", t.Name, err)
		}
		if _, err := t.Stats(col); err != nil {
			return fmt.Errorf("server: register %s: %w", t.Name, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tables[t.Name]; dup {
		return fmt.Errorf("server: register: duplicate table %s", t.Name)
	}
	r.tables[t.Name] = t
	obsTables.Set(int64(len(r.tables)))
	return nil
}

// Lookup returns the registered table with the given name.
func (r *Registry) Lookup(name string) (*table.Table, error) {
	r.mu.RLock()
	t := r.tables[name]
	r.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("server: no table %q", name)
	}
	return t, nil
}

// Names lists the registered table names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tables))
	for n := range r.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
