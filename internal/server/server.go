// Server core: the session/job layer of mcsd. Submit registers a query
// as an asynchronous job and schedules it under the base context;
// Status and Result poll it; Run is the synchronous form the handlers
// and tests share. Every job flows through exactly one
// engine.RunContext call, with the plan cache deciding whether the
// ROGA search runs or a memoized choice is replayed via PlanOverride.
package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/pipeerr"
	"repro/internal/planner"
	"repro/internal/table"
)

var (
	obsServerQueries   = obs.NewCounter("server.queries")
	obsServerErrors    = obs.NewCounter("server.query_errors")
	obsExecTime        = obs.NewTimer("server.exec")
	obsContainedPanics = obs.NewCounter("server.contained_panics")
)

// DefaultMaxPlans is the counted plan-search budget when
// Config.MaxPlans is 0: enough to search small clauses exhaustively
// while keeping a 7-column free-order clause (the paper's widest)
// bounded.
const DefaultMaxPlans = 1 << 16

// Config tunes a Server.
type Config struct {
	// Registry holds the queryable tables; required.
	Registry *Registry
	// Model is the calibrated cost model every plan search uses;
	// required (mcsd calibrates or loads one at startup, tests inject a
	// synthetic one).
	Model *costmodel.Model
	// Rho is the plan-search time threshold (planner.Search.Rho).
	// mcsd runs with a negative value — no wall-clock cutoff — so the
	// search outcome never depends on machine speed.
	Rho float64
	// MaxPlans is the counted plan-search budget (engine.Options
	// .MaxPlans, DefaultMaxPlans when 0). Together with a negative Rho
	// it makes plan choice deterministic: repeated identical queries
	// pick identical plans, so a plan-cache hit can never change a
	// query's result — only skip the search. It also bounds the
	// m!-order search of wide GROUP BY clauses, which is combinatorially
	// infeasible to run exhaustively.
	MaxPlans int
	// MaxConcurrent bounds the number of queries executing at once
	// (default 1). Excess queries wait in the admission queue.
	MaxConcurrent int
	// MaxBytes bounds the aggregate estimated transient footprint of
	// all executing queries; <= 0 means unlimited. A query that cannot
	// fit alone even sequentially is refused with
	// pipeerr.ErrBudgetExceeded.
	MaxBytes int64
	// DefaultWorkers is the per-query worker count used when a request
	// does not name one (default 1).
	DefaultWorkers int
	// PlanCacheSize bounds the plan cache (DefaultPlanCacheSize when 0).
	PlanCacheSize int
	// WatchdogMult, when > 0, arms a per-query watchdog that
	// force-cancels execution once its wall time exceeds
	// WatchdogFloor + WatchdogMult × predicted T_mcs (the cost model's
	// estimate for the chosen plan). The kill surfaces as the typed,
	// retryable pipeerr.ErrWatchdog. 0 disables the watchdog.
	WatchdogMult float64
	// WatchdogFloor is the watchdog's minimum kill budget: it covers
	// the stages the T_mcs estimate does not (filter scans,
	// materialization, aggregation) and is the whole budget until the
	// plan is chosen. Default 2s when the watchdog is armed.
	WatchdogFloor time.Duration
	// BreakerThreshold trips the readiness breaker after this many
	// consecutive contained panics (serve-layer or worker): /readyz
	// reports degraded until a cooldown passes and a panic-free query
	// completes. 0 disables the breaker. The breaker is advisory —
	// queries keep executing while it is open.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before going
	// half-open (default 1s).
	BreakerCooldown time.Duration
	// MaxQueued is the admission-queue depth beyond which /readyz
	// reports saturation (default 8 × MaxConcurrent; < 0 disables the
	// check).
	MaxQueued int
}

// Server is a concurrent query service over registered tables.
type Server struct {
	cfg     Config
	cache   *PlanCache
	adm     *admission
	breaker *panicBreaker

	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg sync.WaitGroup // running jobs

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool
}

// JobState is the lifecycle of one submitted query.
type JobState string

const (
	// JobQueued: accepted, not yet executing (possibly waiting for
	// admission).
	JobQueued JobState = "queued"
	// JobRunning: admitted and executing.
	JobRunning JobState = "running"
	// JobDone: finished successfully; the result is available.
	JobDone JobState = "done"
	// JobFailed: finished with an error.
	JobFailed JobState = "failed"
)

// job is one submitted query and its terminal state.
type job struct {
	id  string
	req QueryRequest

	mu     sync.Mutex
	state  JobState
	res    *QueryResult
	err    error
	doneCh chan struct{}
}

// JobStatus is the pollable view of a job.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Error is the failure message (JobFailed only), with Kind its
	// machine-readable class: "queue_timeout", "execution_timeout",
	// "budget", "watchdog", "pipeline", "shutdown", "invalid", or
	// "internal".
	Error string `json:"error,omitempty"`
	Kind  string `json:"kind,omitempty"`
	// Retryable reports whether re-submitting the identical query may
	// succeed (pipeerr.Retryable's verdict): true for queue timeouts,
	// budget refusals, watchdog kills, and contained pipeline faults;
	// false for validation failures and the caller's own cancellation.
	Retryable bool `json:"retryable,omitempty"`
}

// New validates cfg and returns a ready server.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("server: Config.Registry is required")
	}
	if cfg.Model == nil {
		return nil, errors.New("server: Config.Model is required")
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.DefaultWorkers < 1 {
		cfg.DefaultWorkers = 1
	}
	if cfg.MaxPlans <= 0 {
		cfg.MaxPlans = DefaultMaxPlans
	}
	if cfg.WatchdogMult > 0 && cfg.WatchdogFloor <= 0 {
		cfg.WatchdogFloor = 2 * time.Second
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 8 * cfg.MaxConcurrent
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		cache:      NewPlanCache(cfg.PlanCacheSize, cfg.Model),
		adm:        newAdmission(cfg.MaxConcurrent, cfg.MaxBytes),
		breaker:    newPanicBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}, nil
}

// PlanCache exposes the server's plan cache (tests and /metrics-side
// introspection).
func (s *Server) PlanCache() *PlanCache { return s.cache }

// Submit registers req as an asynchronous job and schedules it on the
// server's base context (plus the request's own timeout, if any). It
// returns the job id to poll.
func (s *Server) Submit(req QueryRequest) (string, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrShuttingDown
	}
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("j%d", s.nextID),
		req:    req,
		state:  JobQueued,
		doneCh: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.wg.Add(1)
	s.mu.Unlock()

	// Containment of last resort: s.run recovers pipeline panics
	// itself, so reaching the onPanic path means the job bookkeeping
	// panicked. Record the failure so waiters unblock instead of
	// hanging on a job that will never settle.
	pipeerr.Spawn(pipeerr.StageServe, func(pe *pipeerr.PipelineError) {
		j.mu.Lock()
		settled := j.state == JobDone || j.state == JobFailed
		if !settled {
			j.state, j.err = JobFailed, pe
		}
		j.mu.Unlock()
		if !settled {
			close(j.doneCh)
		}
	}, func() {
		defer s.wg.Done()
		ctx := s.baseCtx
		var cancel context.CancelFunc
		if req.TimeoutMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		res, err := s.run(ctx, j, req)
		j.mu.Lock()
		if err != nil {
			j.state, j.err = JobFailed, err
		} else {
			j.state, j.res = JobDone, res
		}
		j.mu.Unlock()
		close(j.doneCh)
	})
	return j.id, nil
}

// Status returns the job's current state.
func (s *Server) Status(id string) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state}
	if j.err != nil {
		st.Error = j.err.Error()
		st.Kind = errorKind(j.err)
		st.Retryable = pipeerr.Retryable(j.err)
	}
	return st, nil
}

// Result returns the finished job's result, or an error when the job
// failed or has not finished yet.
func (s *Server) Result(id string) (*QueryResult, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobDone:
		return j.res, nil
	case JobFailed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("%w: job %s is %s", errNotFinished, id, j.state)
	}
}

// Wait blocks until the job reaches a terminal state or ctx ends, then
// returns its result as Result would.
func (s *Server) Wait(ctx context.Context, id string) (*QueryResult, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.doneCh:
		return s.Result(id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Run executes req synchronously on the caller's context: the same
// admission, plan-cache, and engine path Submit's jobs take.
func (s *Server) Run(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	return s.run(ctx, nil, req)
}

// Shutdown drains the server: new submissions are refused and queued
// waiters fail with ErrShuttingDown, running queries get until ctx
// ends to finish, then the base context is cancelled so stragglers
// unwind through the pipeline's cooperative cancellation. It returns
// nil when the drain completed cleanly and ctx.Err() when stragglers
// had to be cancelled (they still complete before Shutdown returns —
// no goroutine outlives it).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.adm.close()

	done := make(chan struct{})
	pipeerr.Spawn(pipeerr.StageServe, nil, func() {
		defer close(done)
		s.wg.Wait()
	})
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// errNoJob is wrapped by lookups of unknown job ids (wire: 404).
var errNoJob = errors.New("server: no such job")

// errNotFinished is wrapped when a result is fetched before the job
// reached a terminal state (wire: 409).
var errNotFinished = errors.New("server: job not finished")

// job looks up a submitted job by id.
func (s *Server) job(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", errNoJob, id)
	}
	return j, nil
}

// run is the one execution path: resolve the table, consult the plan
// cache, pass admission, and call engine.RunContext. It is also the
// serve layer's containment boundary: the pipeline's sequential paths
// execute on this goroutine (the job goroutine, or the caller's for
// Run), where no worker Group can recover a panic — every such fire
// point runs with no live workers (docs/robustness.md), so recovering
// here leaks nothing and turns a would-be process crash into a typed,
// retryable job failure.
func (s *Server) run(ctx context.Context, j *job, req QueryRequest) (res *QueryResult, err error) {
	obsServerQueries.Inc()
	defer func() {
		if v := recover(); v != nil {
			obsContainedPanics.Inc()
			obsServerErrors.Inc()
			s.breaker.recordPanic()
			res = nil
			err = &pipeerr.PipelineError{Stage: pipeerr.StageServe, Round: -1, Worker: -1, Err: pipeerr.AsError(v)}
		}
	}()
	res, err = s.execute(ctx, j, req)
	if err != nil {
		obsServerErrors.Inc()
		// A contained worker panic surfaces as *PipelineError; it counts
		// against the readiness breaker like a serve-layer one. Other
		// failures (cancellations, refusals) are not health signals and
		// leave the consecutive-panic count alone.
		var pe *pipeerr.PipelineError
		if errors.As(err, &pe) {
			s.breaker.recordPanic()
		}
		return nil, pipeerr.NoteCancel(err)
	}
	s.breaker.recordSuccess()
	return res, nil
}

func (s *Server) execute(ctx context.Context, j *job, req QueryRequest) (*QueryResult, error) {
	t, err := s.cfg.Registry.Lookup(req.Table)
	if err != nil {
		// An unknown table is the caller's mistake, not a server fault:
		// classify it with the validation failures (400, kind
		// "invalid", not retryable), not as kind "internal".
		return nil, fmt.Errorf("%w: %v", errInvalidRequest, err)
	}
	q, err := req.ToEngineQuery()
	if err != nil {
		return nil, err
	}
	widths, err := sortColWidths(t, q)
	if err != nil {
		return nil, err
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	// Worst-case footprint: every table row selected, one round per
	// 16-bit slice of the concatenated key (no plan can have more).
	nCols := len(widths)
	totalW := 0
	for _, w := range widths {
		totalW += w
	}
	maxRounds := (totalW + 15) / 16
	if maxRounds < nCols {
		maxRounds = nCols
	}
	estimate := func(w int) int64 {
		return engine.EstimatePipelineBytes(t.N, nCols, maxRounds, w)
	}
	workers, err = s.adm.refuseOverBudget(workers, estimate)
	if err != nil {
		return nil, err
	}
	est := estimate(workers)

	// Admission: queue until a slot and the bytes are free, honoring
	// the request deadline while queued (typed ErrQueueTimeout).
	release, queueWait, err := s.adm.admit(ctx, est)
	if err != nil {
		return nil, err
	}
	defer release()
	if j != nil {
		j.mu.Lock()
		j.state = JobRunning
		j.mu.Unlock()
	}

	// LIMIT 0 queries never run a plan search (the engine returns the
	// empty result straight after the filter), so they neither consult
	// nor populate the plan cache — a zero-value plan must not be
	// memoized under their key.
	cacheable := req.Limit == nil || *req.Limit > 0
	key := planKey(t, q, widths, workers, s.cfg.Rho, s.cfg.MaxPlans, req.Limit, req.Offset, req.ColOrder)
	var choice planner.Choice
	hit := false
	if cacheable {
		choice, hit = s.cache.Get(key)
	}
	opts := engine.Options{
		Massaging: true,
		Model:     s.cfg.Model,
		Rho:       s.cfg.Rho,
		MaxPlans:  s.cfg.MaxPlans,
		Workers:   workers,
		MaxBytes:  maxQueryBytes(req.MaxBytes, s.cfg.MaxBytes, est),
		Offset:    req.Offset,
	}
	if len(req.ColOrder) > 0 {
		opts.FixedColOrder = append([]int(nil), req.ColOrder...)
	}
	if req.Limit != nil {
		lim := *req.Limit
		opts.Limit = &lim
	}
	if hit {
		opts.PlanOverride = &choice
	}

	// Watchdog: bound this query's wall time by a hard multiple of its
	// predicted cost. It arms with the floor budget now (covering the
	// pre-plan stages) and extends once the plan — and with it the
	// T_mcs estimate — is fixed. CancelCause keeps the kill
	// distinguishable from the client's own cancellation.
	runCtx := ctx
	if s.cfg.WatchdogMult > 0 {
		wctx, wcancel := context.WithCancelCause(ctx)
		defer wcancel(nil)
		runCtx = wctx
		wd := startWatchdog(wctx, wcancel, s.cfg.WatchdogFloor)
		mult := s.cfg.WatchdogMult
		floor := s.cfg.WatchdogFloor
		opts.OnPlanChosen = func(predictedNS float64) {
			if predictedNS > 0 {
				wd.extend(floor + time.Duration(predictedNS*mult))
			}
		}
	}

	execStart := time.Now()
	eres, err := engine.RunContext(runCtx, t, q, opts)
	if err != nil {
		// A watchdog kill unwinds the pipeline as a plain context
		// cancellation; surface the typed cause instead.
		if pipeerr.IsCtxErr(err) {
			if cause := context.Cause(runCtx); cause != nil && errors.Is(cause, pipeerr.ErrWatchdog) {
				return nil, cause
			}
		}
		return nil, err
	}
	obsExecTime.Add(time.Since(execStart))
	if cacheable && !hit {
		s.cache.Put(key, planner.Choice{
			ColOrder: eres.ColOrder,
			Plan:     eres.Plan,
			Est:      eres.PredictedMCS,
		})
	}
	return buildResult(j, req, eres, hit, queueWait, time.Since(execStart)), nil
}

// maxQueryBytes resolves the per-query engine budget: the request's own
// cap when given, otherwise the admission reservation (so a query never
// uses more than it was admitted for) when the server budget is bounded,
// otherwise unlimited.
func maxQueryBytes(reqBytes, serverBytes, reserved int64) int64 {
	if reqBytes > 0 {
		return reqBytes
	}
	if serverBytes > 0 {
		return reserved
	}
	return 0
}

// sortColWidths resolves the bit width of every sort column (including
// a window's order column), validating the columns exist.
func sortColWidths(t *table.Table, q engine.Query) ([]int, error) {
	cols := make([]string, 0, len(q.SortCols)+1)
	for _, sc := range q.SortCols {
		cols = append(cols, sc.Name)
	}
	if q.Window != nil {
		cols = append(cols, q.Window.OrderCol)
	}
	widths := make([]int, len(cols))
	for i, name := range cols {
		bs, err := t.ByteSlice(name)
		if err != nil {
			return nil, err
		}
		widths[i] = bs.Width
	}
	return widths, nil
}

// planKey builds the cache key: everything the search outcome depends
// on. Filters are included because they change the row count the cost
// model sees; workers because calibration may become worker-aware;
// limit and offset because the truncated cost model shifts plan
// crossovers with the cut rank (-1 encodes "no limit", which is
// distinct from every literal value); a pinned column order because it
// confines the search to one permutation.
func planKey(t *table.Table, q engine.Query, widths []int, workers int, rho float64, maxPlans int, limit *int, offset int, colOrder []int) string {
	lim := -1
	if limit != nil {
		lim = *limit
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s|n=%d|k=%d|rho=%g|mp=%d|w=%d|oba=%t|lim=%d|off=%d", t.Name, t.N, q.Kind, rho, maxPlans, workers, q.OrderByAgg, lim, offset)
	if len(colOrder) > 0 {
		fmt.Fprintf(&b, "|co=%v", colOrder)
	}
	for i, sc := range q.SortCols {
		fmt.Fprintf(&b, "|c=%s/%d/%t", sc.Name, widths[i], sc.Desc)
	}
	if q.Window != nil {
		fmt.Fprintf(&b, "|win=%s/%d/%t", q.Window.OrderCol, widths[len(widths)-1], q.Window.Desc)
	}
	for _, f := range q.Filters {
		if f.Between {
			fmt.Fprintf(&b, "|f=%s between %d %d", f.Col, f.Lo, f.Hi)
		} else {
			fmt.Fprintf(&b, "|f=%s %d %d", f.Col, f.Op, f.Const)
		}
	}
	return b.String()
}

// buildResult converts an engine result into the wire form.
func buildResult(j *job, req QueryRequest, eres *engine.Result, cacheHit bool, queueWait, exec time.Duration) *QueryResult {
	res := &QueryResult{
		Table:        req.Table,
		Rows:         eres.Rows,
		GroupKeys:    eres.GroupKeys,
		Aggregates:   eres.Aggregates,
		Ranks:        eres.Ranks,
		RowOids:      eres.RowOids,
		Workers:      eres.Workers,
		Plan:         eres.Plan.String(),
		ColOrder:     eres.ColOrder,
		PlanCacheHit: cacheHit,
		QueueWaitNS:  queueWait.Nanoseconds(),
		ExecNS:       exec.Nanoseconds(),
	}
	if j != nil {
		res.JobID = j.id
	}
	return res
}

// errorKind classifies a job failure for the wire (JobStatus.Kind).
// "internal" is the residual class: a query must never need it for a
// failure the taxonomy has a type for — the chaos battery asserts no
// storm-induced failure lands there.
func errorKind(err error) string {
	var pe *pipeerr.PipelineError
	switch {
	case errors.Is(err, pipeerr.ErrQueueTimeout):
		return "queue_timeout"
	case errors.Is(err, pipeerr.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, pipeerr.ErrWatchdog):
		return "watchdog"
	case errors.Is(err, ErrShuttingDown):
		return "shutdown"
	case pipeerr.IsCtxErr(err):
		return "execution_timeout"
	case errors.Is(err, errInvalidRequest):
		return "invalid"
	case errors.Is(err, errNoJob):
		return "not_found"
	case errors.Is(err, errNotFinished):
		return "not_finished"
	case errors.As(err, &pe):
		return "pipeline"
	default:
		return "internal"
	}
}
