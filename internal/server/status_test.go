package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/pipeerr"
	"repro/internal/testutil"
)

// TestStatusMapping pins the full wire taxonomy in one table: every
// error class maps to its own HTTP status, machine-readable kind, and
// retryability verdict. Before PR 8 the handlers collapsed
// queue-timeout, budget-refusal, and contained-panic failures toward
// one bucket; a regression here would send clients the wrong backoff
// policy.
func TestStatusMapping(t *testing.T) {
	pipelineErr := &pipeerr.PipelineError{Stage: pipeerr.StageSort, Round: 1, Worker: 2, Err: errors.New("boom")}
	serveErr := &pipeerr.PipelineError{Stage: pipeerr.StageServe, Round: -1, Worker: -1, Err: errors.New("poison")}
	cases := []struct {
		name      string
		err       error
		status    int
		kind      string
		retryable bool
	}{
		{"invalid request", fmt.Errorf("%w: bad", errInvalidRequest), http.StatusBadRequest, "invalid", false},
		{"no such job", fmt.Errorf("%w: %q", errNoJob, "j9"), http.StatusNotFound, "not_found", false},
		{"not finished", fmt.Errorf("%w: job j1 is running", errNotFinished), http.StatusConflict, "not_finished", false},
		{"shutting down", ErrShuttingDown, http.StatusServiceUnavailable, "shutdown", false},
		{"queue timeout", pipeerr.QueueTimeout(context.DeadlineExceeded), http.StatusTooManyRequests, "queue_timeout", true},
		{"budget refusal", fmt.Errorf("server: %w", pipeerr.ErrBudgetExceeded), http.StatusServiceUnavailable, "budget", true},
		{"watchdog kill", pipeerr.Watchdog(3*time.Second, time.Second), http.StatusGatewayTimeout, "watchdog", true},
		{"client deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "execution_timeout", false},
		{"client cancel", context.Canceled, http.StatusGatewayTimeout, "execution_timeout", false},
		{"contained worker panic", pipelineErr, http.StatusInternalServerError, "pipeline", true},
		{"contained serve panic", serveErr, http.StatusInternalServerError, "pipeline", true},
		{"unclassified", errors.New("mystery"), http.StatusInternalServerError, "internal", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusFor(tc.err); got != tc.status {
				t.Errorf("statusFor = %d, want %d", got, tc.status)
			}
			if got := errorKind(tc.err); got != tc.kind {
				t.Errorf("errorKind = %q, want %q", got, tc.kind)
			}
			if got := pipeerr.Retryable(tc.err); got != tc.retryable {
				t.Errorf("Retryable = %v, want %v", got, tc.retryable)
			}
		})
	}
}

// TestWriteErrorBody asserts the wire error body carries the kind and
// retryable fields, and that the load-induced statuses advertise
// Retry-After.
func TestWriteErrorBody(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, statusFor(pipeerr.QueueTimeout(context.DeadlineExceeded)), pipeerr.QueueTimeout(context.DeadlineExceeded))
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	var body struct {
		Error     string `json:"error"`
		Kind      string `json:"kind"`
		Retryable bool   `json:"retryable"`
	}
	if err := decodeBody(rec.Result(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != "queue_timeout" || !body.Retryable || body.Error == "" {
		t.Errorf("body = %+v", body)
	}

	rec = httptest.NewRecorder()
	writeError(rec, http.StatusBadRequest, fmt.Errorf("%w: nope", errInvalidRequest))
	if rec.Header().Get("Retry-After") != "" {
		t.Error("400 must not carry Retry-After")
	}
}

// TestStatusMappingOverHTTP drives the distinct statuses through the
// real handler stack: a budget refusal is 503 + Retry-After with the
// typed kind, an unknown job 404, an unfinished job 409, and the job
// status JSON carries the retryable flag.
func TestStatusMappingOverHTTP(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tbl := testTPCH(t, 4000)
	// MaxBytes 1: every query is refused up front with the typed
	// budget error.
	srv := newTestServer(t, Config{MaxBytes: 1}, tbl)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := QueryRequest{Table: tbl.Name, Kind: "orderby", SortCols: []SortColReq{{Name: "l_returnflag"}}, Workers: 2}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submit struct {
		JobID string `json:"job_id"`
	}
	if err := decodeBody(resp, &submit); err != nil {
		t.Fatal(err)
	}
	// Poll until the job fails, then check status fields and result
	// status code.
	deadline := time.Now().Add(10 * time.Second)
	var st JobStatus
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + submit.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if err := decodeBody(resp, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobFailed || st.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != JobFailed || st.Kind != "budget" || !st.Retryable {
		t.Fatalf("status = %+v, want failed/budget/retryable", st)
	}
	resp, err = http.Get(hs.URL + "/jobs/" + submit.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("budget-refused result = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("budget refusal must carry Retry-After")
	}

	resp, err = http.Get(hs.URL + "/jobs/nope/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", resp.StatusCode)
	}

	// An unknown table is the caller's mistake: the job fails with kind
	// "invalid" (not "internal") and the result maps to 400.
	req.Table = "no_such_table"
	body, err = json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeBody(resp, &submit); err != nil {
		t.Fatal(err)
	}
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + submit.JobID)
		if err != nil {
			t.Fatal(err)
		}
		// Reset: retryable=false is omitted on the wire (omitempty), so
		// a reused struct would keep the budget job's true.
		st = JobStatus{}
		if err := decodeBody(resp, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobFailed || st.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unknown-table job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != JobFailed || st.Kind != "invalid" || st.Retryable {
		t.Fatalf("unknown-table status = %+v, want failed/invalid/not-retryable", st)
	}
	resp, err = http.Get(hs.URL + "/jobs/" + submit.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-table result = %d, want 400", resp.StatusCode)
	}
}
