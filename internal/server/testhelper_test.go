package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/byteslice"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/table"
)

func testTPCH(t *testing.T, rows int) *table.Table {
	t.Helper()
	tbl, err := datagen.TPCH(datagen.TPCHConfig{SF: 1, Rows: rows, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func testTPCDS(t *testing.T, rows int) *table.Table {
	t.Helper()
	tbl, err := datagen.TPCDS(datagen.TPCDSConfig{SF: 1, Rows: rows, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// newTestServer builds a server over the given tables with the
// deterministic builtin model and unbounded plan search (the serving
// configuration: cached and uncached plans must be identical).
func newTestServer(t *testing.T, cfg Config, tables ...*table.Table) *Server {
	t.Helper()
	reg := NewRegistry()
	for _, tbl := range tables {
		if err := reg.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Registry = reg
	if cfg.Model == nil {
		cfg.Model = BuiltinModel()
	}
	if cfg.Rho == 0 {
		cfg.Rho = -1
	}
	if cfg.MaxPlans == 0 {
		// Smaller than the serving default: deterministic all the same,
		// and it keeps the wide-clause searches fast under -race.
		cfg.MaxPlans = 8192
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// directOptions are the engine options the server path is differenced
// against: identical model, rho, search budget, and workers, no memory
// budget.
func directOptions(srv *Server, workers int) engine.Options {
	return engine.Options{
		Massaging: true,
		Model:     srv.cfg.Model,
		Rho:       srv.cfg.Rho,
		MaxPlans:  srv.cfg.MaxPlans,
		Workers:   workers,
	}
}

// reqFromQuery converts an engine query into its wire form (the
// inverse of QueryRequest.ToEngineQuery).
func reqFromQuery(t *testing.T, tableName string, q engine.Query, workers int) QueryRequest {
	t.Helper()
	req := QueryRequest{Table: tableName, ID: q.ID, OrderByAgg: q.OrderByAgg, Workers: workers}
	switch q.Kind {
	case planner.OrderBy:
		req.Kind = "orderby"
	case planner.GroupBy:
		req.Kind = "groupby"
	case planner.PartitionBy:
		req.Kind = "partitionby"
	default:
		t.Fatalf("unknown clause kind %v", q.Kind)
	}
	for _, sc := range q.SortCols {
		req.SortCols = append(req.SortCols, SortColReq{Name: sc.Name, Desc: sc.Desc})
	}
	for _, f := range q.Filters {
		fr := FilterReq{Col: f.Col, Between: f.Between, Lo: f.Lo, Hi: f.Hi, Const: f.Const}
		if !f.Between {
			fr.Op = opString(t, f.Op)
		}
		req.Filters = append(req.Filters, fr)
	}
	if q.Agg != nil {
		a := &AggReq{Col: q.Agg.Col}
		switch q.Agg.Kind {
		case engine.Count:
			a.Kind = "count"
		case engine.Sum:
			a.Kind = "sum"
		case engine.Avg:
			a.Kind = "avg"
		}
		req.Agg = a
	}
	if q.Window != nil {
		req.Window = &WindowReq{OrderCol: q.Window.OrderCol, Desc: q.Window.Desc}
	}
	return req
}

func opString(t *testing.T, op byteslice.Op) string {
	t.Helper()
	switch op {
	case byteslice.EQ:
		return "eq"
	case byteslice.NEQ:
		return "neq"
	case byteslice.LT:
		return "lt"
	case byteslice.LE:
		return "le"
	case byteslice.GT:
		return "gt"
	case byteslice.GE:
		return "ge"
	default:
		t.Fatalf("unknown op %v", op)
		return ""
	}
}

// resultData is the query-data-only projection compared for byte
// identity: exactly the engine-produced fields, none of the serving
// metadata (job ids, cache flags, timings).
type resultData struct {
	Rows       int        `json:"rows"`
	GroupKeys  [][]uint64 `json:"group_keys,omitempty"`
	Aggregates []uint64   `json:"aggregates,omitempty"`
	Ranks      []uint32   `json:"ranks,omitempty"`
	RowOids    []uint32   `json:"row_oids,omitempty"`
}

// canonEngine canonicalizes a direct engine result for comparison.
func canonEngine(res *engine.Result) ([]byte, error) {
	return json.Marshal(resultData{
		Rows:       res.Rows,
		GroupKeys:  res.GroupKeys,
		Aggregates: res.Aggregates,
		Ranks:      res.Ranks,
		RowOids:    res.RowOids,
	})
}

// canonServer canonicalizes a server result the same way.
func canonServer(res *QueryResult) ([]byte, error) {
	return json.Marshal(resultData{
		Rows:       res.Rows,
		GroupKeys:  res.GroupKeys,
		Aggregates: res.Aggregates,
		Ranks:      res.Ranks,
		RowOids:    res.RowOids,
	})
}

// doQuery drives one query through the full handler path — POST
// /query, poll GET /jobs/{id} until terminal, GET /jobs/{id}/result —
// returning errors instead of failing t so concurrent client
// goroutines can use it.
func doQuery(baseURL string, req QueryRequest) (*QueryResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var submit struct {
		JobID string `json:"job_id"`
		Error string `json:"error"`
	}
	if err := decodeBody(resp, &submit); err != nil {
		return nil, err
	}
	if submit.Error != "" {
		return nil, fmt.Errorf("submit (status %d): %s", resp.StatusCode, submit.Error)
	}
	if submit.JobID == "" {
		return nil, fmt.Errorf("submit returned neither job_id nor error (status %d)", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/jobs/" + submit.JobID)
		if err != nil {
			return nil, err
		}
		var st JobStatus
		if err := decodeBody(resp, &st); err != nil {
			return nil, err
		}
		switch st.State {
		case JobDone:
			resp, err := http.Get(baseURL + "/jobs/" + submit.JobID + "/result")
			if err != nil {
				return nil, err
			}
			var res QueryResult
			if err := decodeBody(resp, &res); err != nil {
				return nil, err
			}
			return &res, nil
		case JobFailed:
			return nil, fmt.Errorf("job %s failed (%s): %s", st.ID, st.Kind, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after 60s", submit.JobID, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}
