// Per-query watchdog: force-cancels a query whose wall-clock time
// exceeds a hard multiple of its predicted cost. A query stalled by an
// injected delay, a scheduling pathology, or a bug would otherwise pin
// its admission slot (and its bytes) until the client deadline — if the
// client even set one. The watchdog is the server's own bound: it arms
// with a floor budget when execution starts, extends to
// floor + mult × predicted T_mcs the moment the plan is fixed
// (engine.Options.OnPlanChosen delivers the cost model's estimate
// before the expensive stages begin), and cancels through
// context.CancelCause so the typed pipeerr.ErrWatchdog is
// distinguishable from the client's own cancellation.
package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeerr"
)

var (
	obsWatchdogKills   = obs.NewCounter("server.watchdog_kills")
	obsWatchdogExtends = obs.NewCounter("server.watchdog_extensions")
)

// watchdog guards one query execution. Its loop goroutine exits when
// the query's context ends (completion or kill) — it can never outlive
// the query.
type watchdog struct {
	cancel context.CancelCauseFunc
	start  time.Time

	mu     sync.Mutex
	budget time.Duration

	extended chan struct{}
}

// startWatchdog arms a watchdog over ctx with the floor budget; cancel
// must be the CancelCause func of that same ctx.
func startWatchdog(ctx context.Context, cancel context.CancelCauseFunc, floor time.Duration) *watchdog {
	w := &watchdog{
		cancel:   cancel,
		start:    time.Now(),
		budget:   floor,
		extended: make(chan struct{}, 1),
	}
	// A panicking watchdog must kill its query, not the process: the
	// loop's only job is enforcing the budget, so if it dies the query
	// is cancelled with the panic as cause rather than running unbounded.
	pipeerr.Spawn(pipeerr.StageServe, func(pe *pipeerr.PipelineError) {
		cancel(pe)
	}, func() {
		w.loop(ctx)
	})
	return w
}

// extend raises the kill budget (it never shrinks: a floor more
// generous than the scaled estimate stays in force) and nudges the
// loop to re-arm its timer.
func (w *watchdog) extend(budget time.Duration) {
	w.mu.Lock()
	raised := budget > w.budget
	if raised {
		w.budget = budget
	}
	w.mu.Unlock()
	if raised {
		obsWatchdogExtends.Inc()
		select {
		case w.extended <- struct{}{}:
		default:
		}
	}
}

// loop sleeps until the budget expires, the budget is extended, or the
// query's context ends. On expiry it cancels the query with the typed
// pipeerr.ErrWatchdog cause and exits.
func (w *watchdog) loop(ctx context.Context) {
	for {
		w.mu.Lock()
		budget := w.budget
		w.mu.Unlock()
		elapsed := time.Since(w.start)
		if elapsed >= budget {
			obsWatchdogKills.Inc()
			w.cancel(pipeerr.Watchdog(elapsed, budget))
			return
		}
		timer := time.NewTimer(budget - elapsed)
		select {
		case <-timer.C:
			// Re-check: an extension may have raced the expiry.
		case <-w.extended:
			timer.Stop()
		case <-ctx.Done():
			timer.Stop()
			return
		}
	}
}
