package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pipeerr"
	"repro/internal/testutil"
)

// TestWatchdogKillsStuckQuery wedges a query with a fault-injected
// delay far past its predicted cost and asserts the per-query watchdog
// force-cancels it: the job fails with the typed pipeerr.ErrWatchdog
// (retryable, kind "watchdog", NOT a bare context error), the kill is
// bounded in wall-clock, and no goroutine outlives the test.
func TestWatchdogKillsStuckQuery(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	// The gather hook sleeps well past the watchdog budget. The sleep
	// itself is uncancellable, so the watchdog's cancel is observed at
	// the next pipeline poll after the hook returns — exactly the
	// stuck-operator shape the watchdog exists for.
	defer faultinject.Set(faultinject.Gather, func() {
		time.Sleep(400 * time.Millisecond)
	})()

	tbl := testTPCH(t, 2000)
	// Tiny floor and multiplier: predicted cost for 2000 rows is far
	// under the injected 400ms stall, so the watchdog must fire.
	srv := newTestServer(t, Config{
		WatchdogMult:  1,
		WatchdogFloor: 30 * time.Millisecond,
	}, tbl)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	req := QueryRequest{Table: tbl.Name, Kind: "orderby", SortCols: []SortColReq{{Name: "l_returnflag"}}, Workers: 1}
	start := time.Now()
	_, err := srv.Run(context.Background(), req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stuck query succeeded; watchdog never fired")
	}
	if !errors.Is(err, pipeerr.ErrWatchdog) {
		t.Fatalf("error = %v, want pipeerr.ErrWatchdog", err)
	}
	if pipeerr.IsCtxErr(err) {
		t.Error("watchdog kill must not read as a caller cancellation")
	}
	if !pipeerr.Retryable(err) {
		t.Error("watchdog kill must be retryable")
	}
	if kind := errorKind(err); kind != "watchdog" {
		t.Errorf("errorKind = %q, want watchdog", kind)
	}
	// The kill happens once the wedged hook returns (~400ms); it must
	// not wait for anything slower.
	if elapsed > 5*time.Second {
		t.Errorf("watchdog kill took %v", elapsed)
	}
}

// TestWatchdogSparesHealthyQuery is the negative: an unwedged query on
// the same tight watchdog settings completes, because the budget is
// extended with the plan's predicted cost and healthy execution fits.
func TestWatchdogSparesHealthyQuery(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tbl := testTPCH(t, 2000)
	srv := newTestServer(t, Config{
		WatchdogMult:  200,
		WatchdogFloor: 2 * time.Second,
	}, tbl)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	req := QueryRequest{Table: tbl.Name, Kind: "orderby", SortCols: []SortColReq{{Name: "l_returnflag"}}, Workers: 2}
	res, err := srv.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("healthy query under watchdog: %v", err)
	}
	if res.Rows != tbl.N {
		t.Errorf("rows = %d, want %d", res.Rows, tbl.N)
	}
}

// TestWatchdogExtendOnlyRaises pins the budget monotonicity contract:
// extend never shrinks an armed budget, so a cheap re-plan cannot
// tighten the noose on a query already granted more time.
func TestWatchdogExtendOnlyRaises(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	w := startWatchdog(ctx, cancel, time.Hour)
	w.extend(time.Minute) // lower: must be ignored
	w.mu.Lock()
	got := w.budget
	w.mu.Unlock()
	if got != time.Hour {
		t.Errorf("budget = %v, want 1h (extend must not shrink)", got)
	}
	w.extend(2 * time.Hour)
	w.mu.Lock()
	got = w.budget
	w.mu.Unlock()
	if got != 2*time.Hour {
		t.Errorf("budget = %v, want 2h", got)
	}
	cancel(nil)
}
