// Exported wire helpers for the sharded coordinator (internal/shard).
// The coordinator speaks the same HTTP/JSON protocol as mcsd and must
// classify, encode, and key exactly the way the single-node server
// does — one shared implementation, re-exported here, keeps the two
// from drifting.
package server

import (
	"net/http"

	"repro/internal/engine"
	"repro/internal/table"
)

// ErrInvalidRequest is the class every request-validation failure
// wraps (HTTP 400, kind "invalid", not retryable). Exported so the
// coordinator can classify its own validation failures identically.
var ErrInvalidRequest = errInvalidRequest

// StatusFor maps a server error to its HTTP status code, exactly as
// the single-node wire layer does.
func StatusFor(err error) int { return statusFor(err) }

// ErrorKind classifies a failure for the wire taxonomy (JobStatus.Kind
// and error bodies): queue_timeout, budget, watchdog, shutdown,
// execution_timeout, invalid, not_found, not_finished, pipeline, or
// the residual internal.
func ErrorKind(err error) string { return errorKind(err) }

// WriteJSON encodes v with the server's content type and status
// handling.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError emits the server's error body shape ({error, kind,
// retryable}, Retry-After on the load-induced statuses).
func WriteError(w http.ResponseWriter, status int, err error) { writeError(w, status, err) }

// PlanKey builds the plan-cache key the server would use for this
// query shape: everything the search outcome depends on. The
// coordinator extends it with its shard topology so a cached pinned
// order is never replayed across re-partitionings.
func PlanKey(t *table.Table, q engine.Query, widths []int, workers int, rho float64, maxPlans int, limit *int, offset int) string {
	return planKey(t, q, widths, workers, rho, maxPlans, limit, offset, nil)
}

// SortColWidths resolves the bit width of every sort column of q
// (including a window's order column), validating they exist in t.
func SortColWidths(t *table.Table, q engine.Query) ([]int, error) {
	return sortColWidths(t, q)
}
