package shard

// The cross-shard storm: a seeded fault storm armed over a live
// 3-shard topology — strikes land in the coordinator's fan-out and
// merge sites AND inside the shard daemons' own pipeline sites — while
// concurrent retrying clients hammer the coordinator. Invariants, as in
// the single-node storm battery:
//
//  1. no goroutine outlives the storm;
//  2. every success — including ones that only succeeded on a retry
//     after a shard strike — is byte-identical to the fault-free
//     single-node engine oracle;
//  3. every failure is typed: never an untyped error, never
//     kind="internal";
//  4. the topology is healthy after the storm: fault-free queries
//     return oracle bytes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/testutil"
)

// shardStormShapes: one shape per merge path — packed order-by, packed
// group-by with the dual-fan-out avg, a window rank, and a wide-key
// group-by.
func shardStormShapes() []struct {
	tbl int
	req server.QueryRequest
} {
	return []struct {
		tbl int
		req server.QueryRequest
	}{
		{0, server.QueryRequest{Table: "narrow0", Kind: "orderby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b", Desc: true}}}},
		{1, server.QueryRequest{Table: "narrow99", Kind: "groupby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b"}},
			Agg:      &server.AggReq{Kind: "avg", Col: "v"}}},
		{1, server.QueryRequest{Table: "narrow99", Kind: "partitionby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b"}},
			Window:   &server.WindowReq{OrderCol: "c", Desc: true}}},
		{2, server.QueryRequest{Table: "wide", Kind: "groupby",
			SortCols: []server.SortColReq{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}, {Name: "w4"}, {Name: "w5"}},
			Agg:      &server.AggReq{Kind: "count"}}},
	}
}

// canonBytes is canonServer without t.Fatal, safe on storm-client
// goroutines.
func canonBytes(res *server.QueryResult) (string, error) {
	b, err := json.Marshal(resultData{Rows: res.Rows, GroupKeys: res.GroupKeys,
		Aggregates: res.Aggregates, Ranks: res.Ranks, RowOids: res.RowOids})
	return string(b), err
}

type shardStormParams struct {
	shards   int
	clients  int
	iters    int           // per client; 0 = run until duration elapses
	duration time.Duration // soak mode
	workers  []int
	chaos    chaos.Config
}

// runShardStorm executes oracle → storm → recovery over a sharded
// topology.
func runShardStorm(t *testing.T, p shardStormParams) {
	defer testutil.CheckNoLeaks(t)()
	tables := batteryTables(t)
	coord, done := newTopology(t, tables, p.shards, Config{
		WatchdogMult:  200,
		WatchdogFloor: 2 * time.Second,
		Client: client.Config{
			MaxRetries:   3,
			BaseBackoff:  time.Millisecond,
			MaxBackoff:   10 * time.Millisecond,
			PollInterval: time.Millisecond,
		},
	})
	defer done()
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()

	storm := chaos.New(p.chaos)
	t.Logf("chaos seed: %#x (re-run with this seed to reproduce the strike mix)", storm.Seed())

	// Fault-free oracle per shape, straight from the engine: under the
	// storm the whole serving stack — coordinator and shards alike — is
	// suspect, so the ground truth bypasses it entirely.
	shapes := shardStormShapes()
	oracles := make([]string, len(shapes))
	for i, s := range shapes {
		oracles[i] = string(runOracle(t, tables[s.tbl], s.req, 4))
	}

	fanoutBefore := counterValue(t, "shard.fanout_subqueries")
	disarm := storm.Arm()
	var (
		mu         sync.Mutex
		successes  int
		typedFails int
		cancels    int
		fastFails  int
		violations []string
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var wg sync.WaitGroup
	stopAt := time.Now().Add(p.duration)
	for c := 0; c < p.clients; c++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			rng := chaos.NewRand(storm.Seed() ^ uint64(cid+1)*0x9E3779B97F4A7C15)
			cl, err := client.New(client.Config{
				BaseURL:          hs.URL,
				Seed:             rng.Uint64(),
				MaxRetries:       3,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				RequestTimeout:   30 * time.Second,
				PollInterval:     time.Millisecond,
				BreakerThreshold: 50,
				BreakerCooldown:  100 * time.Millisecond,
			})
			if err != nil {
				violate("client %d: %v", cid, err)
				return
			}
			for i := 0; p.iters == 0 || i < p.iters; i++ {
				if p.iters == 0 && time.Now().After(stopAt) {
					return
				}
				shape := rng.Intn(len(shapes))
				req := shapes[shape].req
				req.Workers = p.workers[rng.Intn(len(p.workers))]
				ctx, cancel := context.WithCancel(context.Background())
				untrack := storm.Track(cancel)
				res, err := cl.Query(ctx, req)
				untrack()
				cancel()
				switch {
				case err == nil:
					got, cerr := canonBytes(res)
					if cerr != nil {
						violate("canon: %v", cerr)
					} else if got != oracles[shape] {
						violate("client %d shape %d (workers=%d): result diverged from the fault-free oracle", cid, shape, req.Workers)
					}
					mu.Lock()
					successes++
					mu.Unlock()
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					mu.Lock()
					cancels++
					mu.Unlock()
				case errors.Is(err, client.ErrBreakerOpen):
					mu.Lock()
					fastFails++
					mu.Unlock()
				default:
					var we *client.Error
					if !errors.As(err, &we) {
						violate("untyped storm failure: %v", err)
					} else if we.Kind == "" || we.Kind == "internal" {
						violate("failure collapsed to kind=%q: %v", we.Kind, err)
					} else {
						mu.Lock()
						typedFails++
						mu.Unlock()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	disarm()

	for _, v := range violations {
		t.Error(v)
	}
	if successes == 0 {
		t.Error("storm produced zero successes; byte-identity was never exercised")
	}
	if counterValue(t, "chaos.strikes") == 0 {
		t.Error("storm produced zero strikes; shard-site arming is broken")
	}
	if counterValue(t, "shard.fanout_subqueries") == fanoutBefore {
		t.Error("coordinator fan-out never ran during the storm")
	}
	t.Logf("shard storm: %d successes, %d typed failures, %d cancels, %d breaker fast-fails",
		successes, typedFails, cancels, fastFails)

	// Healthy after the storm: every shape returns oracle bytes
	// fault-free, through the same coordinator.
	for i, s := range shapes {
		req := s.req
		req.Workers = 4
		res, err := coord.Run(context.Background(), req)
		if err != nil {
			t.Errorf("post-storm shape %d: %v", i, err)
			continue
		}
		got, err := canonBytes(res)
		if err != nil {
			t.Fatal(err)
		}
		if got != oracles[i] {
			t.Errorf("post-storm shape %d diverged from the oracle", i)
		}
	}
}

func counterValue(t *testing.T, name string) int64 {
	t.Helper()
	for _, c := range obs.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not registered", name)
	return 0
}

// TestShardStormShort is the tier-1 cross-shard storm.
func TestShardStormShort(t *testing.T) {
	runShardStorm(t, shardStormParams{
		shards:  3,
		clients: 6,
		iters:   8,
		workers: []int{1, 4},
		chaos: chaos.Config{
			Seed:       chaos.DefaultSeed,
			PanicProb:  0.01,
			DelayProb:  0.03,
			CancelProb: 0.01,
			MaxDelay:   time.Millisecond,
		},
	})
}

// TestKilledShardSurfacesTypedError: a topology whose shard dies
// mid-flight must fail queries with the retryable shard_unavailable
// taxonomy (503 on the wire), not an untyped transport error — and
// keep serving once the query targets only live state again.
func TestKilledShardSurfacesTypedError(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tables := batteryTables(t)

	var shardSrvs []*server.Server
	var shardHTTP []*httptest.Server
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		reg := server.NewRegistry()
		for _, tbl := range tables {
			st, err := Slice(tbl, Ranges(tbl.N, 2)[i])
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(st); err != nil {
				t.Fatal(err)
			}
		}
		srv, err := server.New(server.Config{
			Registry: reg, Model: server.BuiltinModel(), Rho: -1,
			MaxPlans: testMaxPlans, MaxConcurrent: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		shardSrvs = append(shardSrvs, srv)
		shardHTTP = append(shardHTTP, hs)
		urls[i] = hs.URL
	}
	defer func() {
		for i := len(shardSrvs) - 1; i >= 0; i-- {
			if err := shardSrvs[i].Shutdown(context.Background()); err != nil {
				t.Errorf("shard %d shutdown: %v", i, err)
			}
			shardHTTP[i].Close()
		}
	}()

	fullReg := server.NewRegistry()
	for _, tbl := range tables {
		if err := fullReg.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := New(Config{
		Registry: fullReg, Shards: urls,
		Model: server.BuiltinModel(), Rho: -1, MaxPlans: testMaxPlans,
		Client: client.Config{
			MaxRetries:   1,
			BaseBackoff:  time.Millisecond,
			MaxBackoff:   2 * time.Millisecond,
			PollInterval: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := coord.Shutdown(context.Background()); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	}()

	req := server.QueryRequest{Table: "narrow0", Kind: "orderby",
		SortCols: []server.SortColReq{{Name: "a"}, {Name: "b", Desc: true}}, Workers: 2}
	want := runOracle(t, tables[0], req, 2)
	ctx := context.Background()
	res, err := coord.Run(ctx, req)
	if err != nil {
		t.Fatalf("pre-kill query: %v", err)
	}
	if got := canonServer(t, res); string(got) != string(want) {
		t.Fatalf("pre-kill result diverges from oracle")
	}

	// Kill shard 1: in-flight connections die, new ones are refused.
	if err := shardSrvs[1].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	shardHTTP[1].Close()

	_, err = coord.Run(ctx, req)
	if err == nil {
		t.Fatal("query over a killed shard succeeded")
	}
	if kind := coord.errorKind(err); kind != "shard_unavailable" {
		t.Errorf("killed shard: kind %q, want shard_unavailable (err: %v)", kind, err)
	}
	if !coord.retryable(err) {
		t.Errorf("killed shard: error not retryable: %v", err)
	}
	if status := coord.statusFor(err); status != 503 {
		t.Errorf("killed shard: status %d, want 503", status)
	}
	var se *shardError
	if !errors.As(err, &se) {
		t.Errorf("killed shard: error does not identify the shard: %v", err)
	} else if se.addr != urls[1] {
		t.Errorf("killed shard: error names %s, want %s", se.addr, urls[1])
	}
}
