// The coordinator: mcsd's scatter-gather front. It speaks the same
// job-oriented protocol as a single mcsd (Submit/Status/Result/Wait/
// Run), but executes a query by pinning the plan search's column order
// over the full table, fanning the rewritten sub-query out to every
// shard through the retrying client pool, and merging the per-shard
// sorted results back into the bytes a single-node run would have
// produced (docs/sharding.md).
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/byteslice"
	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/mergesort"
	"repro/internal/obs"
	"repro/internal/pipeerr"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/table"
)

var (
	obsQueries         = obs.NewCounter("shard.queries")
	obsQueryErrors     = obs.NewCounter("shard.query_errors")
	obsContainedPanics = obs.NewCounter("shard.contained_panics")
	obsFanout          = obs.NewCounter("shard.fanout_subqueries")
	obsExecTime        = obs.NewTimer("shard.exec")
)

// Config tunes a Coordinator.
type Config struct {
	// Registry holds the full (unsharded) tables; required. The
	// coordinator never sorts them — it scans them for filter
	// cardinalities and statistics (plan pinning) and looks sort-key
	// codes up by global oid (cross-shard merging).
	Registry *server.Registry
	// Shards lists the shard daemons' base URLs in range order: shard i
	// must serve rows [i·n/N, (i+1)·n/N) of every registered table
	// (mcsd -shard-index i -shard-count N). Required, at least one.
	Shards []string
	// Model is the cost model the pin search uses; required. It must be
	// the model the equivalence oracle runs with — the pinned order is
	// only the single-node order if both searches cost plans identically.
	Model *costmodel.Model
	// Rho and MaxPlans are the plan-search determinism keystone, exactly
	// as on the single-node server: a negative Rho (no wall-clock
	// cutoff) plus a counted budget make the pinned order a pure
	// function of the query and the statistics.
	Rho      float64
	MaxPlans int
	// DefaultWorkers is the merge-side worker count used when a request
	// does not name one (default 1). The value also travels to the
	// shards inside the sub-queries (0 there means the shard's own
	// default).
	DefaultWorkers int
	// PlanCacheSize bounds the pinned-choice cache
	// (server.DefaultPlanCacheSize when 0).
	PlanCacheSize int
	// WatchdogMult, when > 0, arms a per-query watchdog killing the
	// fan-out once wall time exceeds WatchdogFloor + WatchdogMult ×
	// predicted single-node T_mcs. The budget is deliberately the
	// single-node estimate: N shards sorting n/N rows each finish under
	// it, so a fan-out that overruns it is stuck, not slow.
	WatchdogMult float64
	// WatchdogFloor is the watchdog's minimum kill budget (default 2s
	// when the watchdog is armed).
	WatchdogFloor time.Duration
	// Client configures the per-shard HTTP clients (retry, backoff,
	// breaker). BaseURL and Seed are per-endpoint and filled in by the
	// pool.
	Client client.Config
}

// Coordinator fans queries out over the shards and gathers the results.
type Coordinator struct {
	cfg    Config
	pool   *client.Pool
	cache  *server.PlanCache
	ranges map[string][]Range

	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg sync.WaitGroup // running jobs

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool
}

// job is one submitted query and its terminal state (the same
// lifecycle as the single-node server's jobs).
type job struct {
	id  string
	req server.QueryRequest

	mu     sync.Mutex
	state  server.JobState
	res    *server.QueryResult
	err    error
	doneCh chan struct{}
}

// New validates cfg and returns a ready coordinator. The per-table
// shard ranges are fixed here, from the registered row counts and the
// shard list — the same Ranges formula the shards themselves slice by.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Registry == nil {
		return nil, errors.New("shard: Config.Registry is required")
	}
	if cfg.Model == nil {
		return nil, errors.New("shard: Config.Model is required")
	}
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: Config.Shards is required")
	}
	if cfg.DefaultWorkers < 1 {
		cfg.DefaultWorkers = 1
	}
	if cfg.MaxPlans <= 0 {
		cfg.MaxPlans = server.DefaultMaxPlans
	}
	if cfg.WatchdogMult > 0 && cfg.WatchdogFloor <= 0 {
		cfg.WatchdogFloor = 2 * time.Second
	}
	ranges := make(map[string][]Range)
	for _, name := range cfg.Registry.Names() {
		t, err := cfg.Registry.Lookup(name)
		if err != nil {
			return nil, err
		}
		ranges[name] = Ranges(t.N, len(cfg.Shards))
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Coordinator{
		cfg:        cfg,
		pool:       client.NewPool(cfg.Client),
		cache:      server.NewPlanCache(cfg.PlanCacheSize, cfg.Model),
		ranges:     ranges,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}, nil
}

// PlanCache exposes the coordinator's pinned-choice cache (tests).
func (c *Coordinator) PlanCache() *server.PlanCache { return c.cache }

// TableRanges returns the shard ranges of a registered table.
func (c *Coordinator) TableRanges(name string) []Range { return c.ranges[name] }

// Submit registers req as an asynchronous job and schedules the
// fan-out on the coordinator's base context (plus the request's own
// timeout, if any). Sub-queries do not re-apply the timeout — the job
// context already carries the deadline end to end.
func (c *Coordinator) Submit(req server.QueryRequest) (string, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", server.ErrShuttingDown
	}
	c.nextID++
	j := &job{
		id:     fmt.Sprintf("j%d", c.nextID),
		req:    req,
		state:  server.JobQueued,
		doneCh: make(chan struct{}),
	}
	c.jobs[j.id] = j
	c.wg.Add(1)
	c.mu.Unlock()

	// Containment of last resort, exactly as on the single-node server:
	// c.run recovers fan-out and merge panics itself, so reaching the
	// onPanic path means the job bookkeeping panicked. Settle the job so
	// waiters unblock.
	pipeerr.Spawn(pipeerr.StageServe, func(pe *pipeerr.PipelineError) {
		j.mu.Lock()
		settled := j.state == server.JobDone || j.state == server.JobFailed
		if !settled {
			j.state, j.err = server.JobFailed, pe
		}
		j.mu.Unlock()
		if !settled {
			close(j.doneCh)
		}
	}, func() {
		defer c.wg.Done()
		ctx := c.baseCtx
		var cancel context.CancelFunc
		if req.TimeoutMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		res, err := c.run(ctx, j, req)
		j.mu.Lock()
		if err != nil {
			j.state, j.err = server.JobFailed, err
		} else {
			j.state, j.res = server.JobDone, res
		}
		j.mu.Unlock()
		close(j.doneCh)
	})
	return j.id, nil
}

// Status returns the job's current state, classified with the
// coordinator's error taxonomy (shard_unavailable for unreachable
// shards, the propagated shard kind otherwise).
func (c *Coordinator) Status(id string) (server.JobStatus, error) {
	j, err := c.job(id)
	if err != nil {
		return server.JobStatus{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := server.JobStatus{ID: j.id, State: j.state}
	if j.err != nil {
		st.Error = j.err.Error()
		st.Kind = c.errorKind(j.err)
		st.Retryable = c.retryable(j.err)
	}
	return st, nil
}

// Result returns the finished job's result, or an error when the job
// failed or has not finished yet.
func (c *Coordinator) Result(id string) (*server.QueryResult, error) {
	j, err := c.job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case server.JobDone:
		return j.res, nil
	case server.JobFailed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("%w: job %s is %s", errNotFinished, id, j.state)
	}
}

// Wait blocks until the job reaches a terminal state or ctx ends, then
// returns its result as Result would.
func (c *Coordinator) Wait(ctx context.Context, id string) (*server.QueryResult, error) {
	j, err := c.job(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.doneCh:
		return c.Result(id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Run executes req synchronously on the caller's context: the same
// pin, fan-out, and merge path Submit's jobs take.
func (c *Coordinator) Run(ctx context.Context, req server.QueryRequest) (*server.QueryResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, server.ErrShuttingDown
	}
	c.wg.Add(1)
	c.mu.Unlock()
	defer c.wg.Done()
	return c.run(ctx, nil, req)
}

// Shutdown drains the coordinator: new submissions are refused,
// running fan-outs get until ctx ends to finish, then the base context
// is cancelled so stragglers unwind through the client's cooperative
// cancellation. No goroutine outlives the call.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()

	done := make(chan struct{})
	pipeerr.Spawn(pipeerr.StageServe, nil, func() {
		defer close(done)
		c.wg.Wait()
	})
	select {
	case <-done:
		c.baseCancel()
		return nil
	case <-ctx.Done():
		c.baseCancel()
		<-done
		return ctx.Err()
	}
}

// errNoJob is wrapped by lookups of unknown job ids (wire: 404).
var errNoJob = errors.New("shard: no such job")

// errNotFinished is wrapped when a result is fetched before the job
// reached a terminal state (wire: 409).
var errNotFinished = errors.New("shard: job not finished")

// job looks up a submitted job by id.
func (c *Coordinator) job(id string) (*job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", errNoJob, id)
	}
	return j, nil
}

// shardError tags a failed shard call with its endpoint so the
// taxonomy can tell "a shard failed" (transport faults, refused
// connections — retryable shard_unavailable) from the coordinator's
// own failures. Unwrap keeps the typed chain (client.Error, pipeerr
// sentinels, context errors) reachable through it.
type shardError struct {
	addr string
	err  error
}

func (e *shardError) Error() string { return fmt.Sprintf("shard %s: %v", e.addr, e.err) }
func (e *shardError) Unwrap() error { return e.err }

// run is the one execution path and the coordinator's containment
// boundary: the merge runs on this goroutine (the job goroutine, or
// the caller's for Run), so a panicking merge — chaos arms the
// shard.merge site with panics — becomes a typed, retryable job
// failure instead of a process crash.
func (c *Coordinator) run(ctx context.Context, j *job, req server.QueryRequest) (res *server.QueryResult, err error) {
	obsQueries.Inc()
	defer func() {
		if v := recover(); v != nil {
			obsContainedPanics.Inc()
			obsQueryErrors.Inc()
			res = nil
			err = &pipeerr.PipelineError{Stage: pipeerr.StageServe, Round: -1, Worker: -1, Err: pipeerr.AsError(v)}
		}
	}()
	res, err = c.execute(ctx, j, req)
	if err != nil {
		obsQueryErrors.Inc()
		return nil, pipeerr.NoteCancel(err)
	}
	return res, nil
}

// execute implements one query: pin the plan, fan out, merge.
func (c *Coordinator) execute(ctx context.Context, j *job, req server.QueryRequest) (*server.QueryResult, error) {
	t, err := c.cfg.Registry.Lookup(req.Table)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", server.ErrInvalidRequest, err)
	}
	if len(req.ColOrder) > 0 {
		// The pin is the coordinator's own job; accepting an external one
		// would let a caller silently diverge the shards from the order
		// the merge keys are built in.
		return nil, fmt.Errorf("%w: col_order is reserved for the coordinator's shard sub-queries", server.ErrInvalidRequest)
	}
	q, err := req.ToEngineQuery()
	if err != nil {
		return nil, err
	}
	widths, err := server.SortColWidths(t, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", server.ErrInvalidRequest, err)
	}

	workers := req.Workers
	if workers <= 0 {
		workers = c.cfg.DefaultWorkers
	}
	if j != nil {
		j.mu.Lock()
		j.state = server.JobRunning
		j.mu.Unlock()
	}

	// LIMIT 0 runs no plan search on the single node, so the coordinator
	// pins nothing either: the fan-out only collects filtered row counts.
	limit0 := req.Limit != nil && *req.Limit == 0
	var choice planner.Choice
	planHit := false
	if !limit0 {
		choice, planHit, err = c.pinnedChoice(ctx, t, req, q, widths, workers)
		if err != nil {
			return nil, err
		}
	}

	// Watchdog: one-shot — unlike the single-node server the plan (and
	// with it the T_mcs estimate) is already fixed before any shard
	// starts, so the budget never needs extending mid-flight.
	runCtx := ctx
	if c.cfg.WatchdogMult > 0 {
		wctx, wcancel := context.WithCancelCause(ctx)
		defer wcancel(nil)
		runCtx = wctx
		budget := c.cfg.WatchdogFloor
		if choice.Est > 0 {
			budget += time.Duration(choice.Est * c.cfg.WatchdogMult)
		}
		start := time.Now()
		pipeerr.Spawn(pipeerr.StageServe, nil, func() {
			tm := time.NewTimer(budget)
			defer tm.Stop()
			select {
			case <-tm.C:
				wcancel(pipeerr.Watchdog(time.Since(start), budget))
			case <-wctx.Done():
			}
		})
	}

	execStart := time.Now()
	subs := buildSubRequests(req, choice.ColOrder)
	results := make([][]*server.QueryResult, len(subs))
	for vi := range results {
		results[vi] = make([]*server.QueryResult, len(c.cfg.Shards))
	}
	g := pipeerr.NewGroup(runCtx)
	for vi := range subs {
		sub := subs[vi]
		for si, addr := range c.cfg.Shards {
			vi, si, addr := vi, si, addr
			g.Go(pipeerr.StageServe, vi, si, func(gctx context.Context) error {
				faultinject.Fire(faultinject.ShardFanout)
				obsFanout.Inc()
				cl, err := c.pool.For(addr)
				if err != nil {
					return &shardError{addr: addr, err: err}
				}
				r, err := cl.Query(gctx, sub)
				if err != nil {
					return &shardError{addr: addr, err: err}
				}
				results[vi][si] = r
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return nil, surfaceWatchdog(runCtx, err)
	}

	faultinject.Fire(faultinject.ShardMerge)

	rows := 0
	for _, r := range results[0] {
		if r == nil {
			return nil, fmt.Errorf("%w: missing shard result", errShardInvalid)
		}
		rows += r.Rows
	}

	res := &server.QueryResult{
		Table:        req.Table,
		Rows:         rows,
		Workers:      workers,
		Plan:         choice.Plan.String(),
		ColOrder:     choice.ColOrder,
		PlanCacheHit: planHit,
	}
	if j != nil {
		res.JobID = j.id
	}
	if limit0 {
		// Match the single-node LIMIT 0 result: filtered row count, no
		// data, the zero plan's rendering.
		res.Plan = plan.Plan{}.String()
		res.ColOrder = nil
		res.ExecNS = time.Since(execStart).Nanoseconds()
		return res, nil
	}

	if q.Window != nil {
		ranks, oids, err := c.mergeWindowParts(runCtx, t, q, req, choice.ColOrder, widths, results[0], workers)
		if err != nil {
			return nil, surfaceWatchdog(runCtx, err)
		}
		res.Ranks, res.RowOids = ranks, oids
	} else {
		gk, agg, err := c.mergeGroupParts(runCtx, q, req, choice.ColOrder, widths, results, workers)
		if err != nil {
			return nil, surfaceWatchdog(runCtx, err)
		}
		res.GroupKeys, res.Aggregates = gk, agg
	}
	obsExecTime.Add(time.Since(execStart))
	res.ExecNS = time.Since(execStart).Nanoseconds()
	return res, nil
}

// surfaceWatchdog converts the plain context cancellation a watchdog
// kill unwinds as back into the typed pipeerr.ErrWatchdog cause.
func surfaceWatchdog(runCtx context.Context, err error) error {
	if pipeerr.IsCtxErr(err) {
		if cause := context.Cause(runCtx); cause != nil && errors.Is(cause, pipeerr.ErrWatchdog) {
			return cause
		}
	}
	return err
}

// buildSubRequests rewrites req into the per-shard sub-queries of one
// fan-out wave. Every shape becomes one sub-query except avg, which
// needs two (global avg = global sum / global count, and neither is a
// function of per-shard avgs).
//
// LIMIT/OFFSET rewriting: a shard cannot apply the global offset (it
// cannot know how many rows the other shards contribute before it),
// so sub-queries ask for the first offset+limit entries and the
// coordinator's merge re-applies the window. Any entry within the
// global cut is within each holder's local cut (a shard's entries are
// a subsequence of the global order), so the pre-cut loses nothing.
// ORDER BY <agg> sorts by a value only the gather knows, so those
// sub-queries drop the cut and the agg-sort entirely and return full
// key-ordered group tables.
func buildSubRequests(req server.QueryRequest, pin []int) []server.QueryRequest {
	sub := req
	sub.TimeoutMS = 0
	sub.ColOrder = nil
	if len(pin) > 0 {
		sub.ColOrder = append([]int(nil), pin...)
	}
	switch {
	case req.OrderByAgg:
		sub.OrderByAgg = false
		sub.Limit, sub.Offset = nil, 0
	case req.Limit != nil:
		cut := 0
		if *req.Limit > 0 {
			cut = req.Offset + *req.Limit
		}
		sub.Limit, sub.Offset = &cut, 0
	default:
		sub.Offset = 0
	}
	if req.Agg != nil && req.Agg.Kind == "avg" {
		cnt := sub
		cnt.Agg = &server.AggReq{Kind: "count"}
		sum := sub
		sum.Agg = &server.AggReq{Kind: "sum", Col: req.Agg.Col}
		return []server.QueryRequest{cnt, sum}
	}
	return []server.QueryRequest{sub}
}

// mergeGroupParts merges the per-shard group tables into the global
// one: decode, validate, merge-and-combine, then re-apply the pieces
// the sub-queries stripped (the aggregate sort of ORDER BY <agg>, the
// avg division, the LIMIT/OFFSET window).
func (c *Coordinator) mergeGroupParts(ctx context.Context, q engine.Query, req server.QueryRequest, pin []int, widths []int, results [][]*server.QueryResult, workers int) ([][]uint64, []uint64, error) {
	m := len(q.SortCols)
	spec := mergeSpec{order: pin, widths: widths, desc: make([]bool, m)}
	for i, sc := range q.SortCols {
		spec.desc[i] = sc.Desc
	}

	avg := q.Agg != nil && q.Agg.Kind == engine.Avg
	parts := make([]groupsPart, len(results[0]))
	for si, pr := range results[0] {
		p := groupsPart{keys: pr.GroupKeys, agg: pr.Aggregates}
		if avg {
			ar := results[1][si]
			if len(ar.GroupKeys) != len(pr.GroupKeys) || len(ar.Aggregates) != len(ar.GroupKeys) {
				return nil, nil, fmt.Errorf("%w: avg sub-queries disagree on shard %d's groups", errShardInvalid, si)
			}
			for gi := range pr.GroupKeys {
				if gi&(mergeCtxStride-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, nil, err
					}
				}
				if len(ar.GroupKeys[gi]) != len(pr.GroupKeys[gi]) || !sameClauseKey(ar.GroupKeys[gi], pr.GroupKeys[gi]) {
					return nil, nil, fmt.Errorf("%w: avg sub-queries disagree on shard %d's groups", errShardInvalid, si)
				}
			}
			p.aux = ar.Aggregates
		}
		parts[si] = p
	}

	merged, err := mergeGroups(ctx, parts, spec, workers)
	if err != nil {
		return nil, nil, err
	}
	if avg {
		// merged.agg is the global count, merged.aux the global sum;
		// the engine's per-group arithmetic is sum / row-count.
		for gi := range merged.agg {
			if gi&(mergeCtxStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, nil, err
				}
			}
			if merged.agg[gi] == 0 {
				return nil, nil, fmt.Errorf("%w: avg group with zero count", errShardInvalid)
			}
			merged.agg[gi] = merged.aux[gi] / merged.agg[gi]
		}
	}
	if q.OrderByAgg {
		sortMergedByAggregate(merged)
	}

	lo, hi := cutWindow(len(merged.keys), req.Limit, req.Offset)
	return merged.keys[lo:hi], merged.agg[lo:hi], nil
}

// sortMergedByAggregate re-applies the aggregate sort the sub-queries
// stripped, with the engine's own machinery (descending via
// complement, the stable 64-bit-bank sort) over the merged groups —
// which are in global key order, the same order the single node's
// aggregate sort starts from, so ties land identically.
func sortMergedByAggregate(mg *mergedGroups) {
	n := len(mg.agg)
	keys := make([]uint64, n)
	idx := make([]uint32, n)
	for i, a := range mg.agg {
		keys[i] = ^a
		idx[i] = uint32(i)
	}
	mergesort.Sort(64, keys, idx)
	gk := make([][]uint64, n)
	ag := make([]uint64, n)
	for i, j := range idx {
		gk[i], ag[i] = mg.keys[j], mg.agg[j]
	}
	mg.keys, mg.agg = gk, ag
}

// cutWindow clamps [offset, offset+limit) to n entries.
func cutWindow(n int, limit *int, offset int) (int, int) {
	lo := offset
	if lo > n {
		lo = n
	}
	hi := n
	if limit != nil && lo+*limit < hi {
		hi = lo + *limit
	}
	return lo, hi
}

// mergeWindowParts merges the per-shard ranked-row results of a window
// query. Shards return local oids in their local sort order; the
// coordinator maps them to global oids (range base + local oid),
// rebuilds the massaged sort keys from its own full table, merges the
// runs — TopK with the tie-extended cut under a LIMIT — and recomputes
// ranks over the merged prefix exactly as the engine does (ranks only
// look backward, so ranking the prefix is exact).
func (c *Coordinator) mergeWindowParts(ctx context.Context, t *table.Table, q engine.Query, req server.QueryRequest, pin []int, widths []int, parts []*server.QueryResult, workers int) ([]uint32, []uint32, error) {
	m := len(q.SortCols) + 1
	spec := mergeSpec{order: pin, widths: widths, desc: make([]bool, m)}
	for i, sc := range q.SortCols {
		spec.desc[i] = sc.Desc
	}
	spec.desc[m-1] = q.Window.Desc

	cols := make([]*byteslice.BS, m)
	for i, name := range sortColNames(q) {
		bs, err := t.ByteSlice(name)
		if err != nil {
			return nil, nil, err
		}
		cols[i] = bs
	}
	ranges := c.ranges[req.Table]
	if len(ranges) != len(parts) {
		return nil, nil, fmt.Errorf("%w: %d shard results for %d ranges", errShardInvalid, len(parts), len(ranges))
	}

	total := 0
	for si, pr := range parts {
		if len(pr.Ranks) != len(pr.RowOids) {
			return nil, nil, fmt.Errorf("%w: shard %d has %d ranks for %d rows", errShardInvalid, si, len(pr.Ranks), len(pr.RowOids))
		}
		total += len(pr.RowOids)
	}

	cut := 0
	if req.Limit != nil {
		cut = req.Offset + *req.Limit
	}

	// Rebuild each part's sort keys from the full table and check the
	// part really is in sorted order with ascending-oid ties — the
	// invariant the no-compare merge relies on.
	flat, err := c.mergeWindowRuns(ctx, spec, cols, ranges, parts, total, cut, workers)
	if err != nil {
		return nil, nil, err
	}

	offsets := partOffsets(len(parts), func(i int) int { return len(parts[i].RowOids) })
	oids := make([]uint32, len(flat))
	for i, f := range flat {
		if i&(mergeCtxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		pi, li := locateFlat(offsets, f)
		oids[i] = uint32(ranges[pi].Lo) + parts[pi].RowOids[li]
	}

	// Rank recomputation, replicating the engine: partition on equality
	// of the partition columns' codes, rank counts rows and advances on
	// an order-code change (code inequality is invariant under the
	// descending complement, so raw codes suffice).
	nPart := m - 1
	samePartition := func(a, b uint32) bool {
		for ci := 0; ci < nPart; ci++ {
			if cols[ci].Lookup(int(a)) != cols[ci].Lookup(int(b)) {
				return false
			}
		}
		return true
	}
	orderCol := cols[m-1]
	ranks := make([]uint32, len(oids))
	partStart := 0
	var rank, seen uint32
	for i, cur := range oids {
		if i&(mergeCtxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		if i == 0 || !samePartition(cur, oids[partStart]) {
			partStart, rank, seen = i, 1, 1
		} else {
			seen++
			if orderCol.Lookup(int(cur)) != orderCol.Lookup(int(oids[i-1])) {
				rank = seen
			}
		}
		ranks[i] = rank
	}

	lo := req.Offset
	if lo > len(oids) {
		lo = len(oids)
	}
	return ranks[lo:], oids[lo:], nil
}

// mergeWindowRuns builds the massaged keys of every part from the full
// table and merges the runs, returning the merged flat-index order cut
// at the global limit (0 = no cut). Each part is validated on the way:
// oids inside the shard's range, keys non-decreasing, ties in
// ascending oid order.
func (c *Coordinator) mergeWindowRuns(ctx context.Context, spec mergeSpec, cols []*byteslice.BS, ranges []Range, parts []*server.QueryResult, total, cut, workers int) ([]uint32, error) {
	m := len(spec.order)
	vals := make([]uint64, m)
	if spec.totalWidth() <= 64 {
		keys := make([]uint64, 0, total)
		runs := []int{0}
		for si, pr := range parts {
			var prevKey uint64
			var prevOid uint32
			for i, oid := range pr.RowOids {
				if i&(mergeCtxStride-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				if int(oid) >= ranges[si].Len() {
					return nil, fmt.Errorf("%w: shard %d row oid %d outside its %d-row range", errShardInvalid, si, oid, ranges[si].Len())
				}
				g := ranges[si].Lo + int(oid)
				for ci := range cols {
					vals[ci] = cols[ci].Lookup(g)
				}
				k := spec.pack(vals)
				if i > 0 && (k < prevKey || (k == prevKey && oid <= prevOid)) {
					return nil, fmt.Errorf("%w: shard %d row %d out of sort order", errShardInvalid, si, i)
				}
				prevKey, prevOid = k, oid
				keys = append(keys, k)
			}
			runs = append(runs, len(keys))
		}
		return mergeRows64(ctx, keys, runs, cut, workers)
	}

	vecs := make([][]uint64, 0, total)
	runs := []int{0}
	buf := make([]uint64, m)
	for si, pr := range parts {
		prev := make([]uint64, m)
		var prevOid uint32
		for i, oid := range pr.RowOids {
			if i&(mergeCtxStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if int(oid) >= ranges[si].Len() {
				return nil, fmt.Errorf("%w: shard %d row oid %d outside its %d-row range", errShardInvalid, si, oid, ranges[si].Len())
			}
			g := ranges[si].Lo + int(oid)
			for ci := range cols {
				vals[ci] = cols[ci].Lookup(g)
			}
			spec.massage(vals, buf)
			if i > 0 {
				if cmp := compareVec(prev, buf); cmp > 0 || (cmp == 0 && oid <= prevOid) {
					return nil, fmt.Errorf("%w: shard %d row %d out of sort order", errShardInvalid, si, i)
				}
			}
			copy(prev, buf)
			prevOid = oid
			vecs = append(vecs, append([]uint64(nil), buf...))
		}
		runs = append(runs, len(vecs))
	}
	return mergeWide(ctx, vecs, runs, cut)
}

// errorKind classifies a coordinator job failure for the wire. Shard
// failures with a typed kind propagate it (a budget refusal on a shard
// is a budget refusal of the query); unreachable or unresponsive
// shards — transport faults, open breakers — become the retryable
// "shard_unavailable"; everything the coordinator fails at itself
// falls through to the single-node taxonomy.
func (c *Coordinator) errorKind(err error) string {
	var ce *client.Error
	var se *shardError
	switch {
	case errors.Is(err, errNoJob):
		return "not_found"
	case errors.Is(err, errNotFinished):
		return "not_finished"
	case errors.Is(err, errShardInvalid):
		return "shard_invalid"
	case errors.As(err, &ce):
		if ce.Kind != "" && ce.Kind != "internal" {
			return ce.Kind
		}
		return "shard_unavailable"
	case errors.Is(err, client.ErrBreakerOpen):
		return "shard_unavailable"
	case errors.As(err, &se):
		if pipeerr.IsCtxErr(se.err) {
			return server.ErrorKind(err)
		}
		return "shard_unavailable"
	default:
		return server.ErrorKind(err)
	}
}

// retryable reports whether re-submitting the identical query may
// succeed: the shard taxonomy's verdict for shard failures (a restarted
// or recovered shard serves the retry), pipeerr's for everything else.
func (c *Coordinator) retryable(err error) bool {
	var ce *client.Error
	var se *shardError
	switch {
	case errors.Is(err, errShardInvalid):
		return false
	case errors.As(err, &ce):
		return ce.Retryable
	case errors.Is(err, client.ErrBreakerOpen):
		return true
	case errors.As(err, &se):
		if pipeerr.IsCtxErr(se.err) {
			return pipeerr.Retryable(err)
		}
		return true
	default:
		return pipeerr.Retryable(err)
	}
}

// statusFor maps coordinator errors to HTTP statuses: the coordinator's
// own job-layer sentinels first, shard unavailability as 503 (the
// conventional "upstream is down, retry later"), invalid shard
// responses as 502, and the single-node mapping for the rest.
func (c *Coordinator) statusFor(err error) int {
	switch {
	case errors.Is(err, errNoJob):
		return 404
	case errors.Is(err, errNotFinished):
		return 409
	case errors.Is(err, errShardInvalid):
		return 502
	default:
		if c.errorKind(err) == "shard_unavailable" {
			return 503
		}
		return server.StatusFor(err)
	}
}
