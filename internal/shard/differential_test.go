// The cross-shard equivalence battery: every query shape the wire
// supports, across shard counts {1, 2, 3, 4}, LIMIT/OFFSET windows,
// duplicate rates, worker counts, and the cached/uncached pin paths —
// asserting the gathered result is byte-identical to a direct
// engine.RunContext run on the unsharded table, and to the 1-shard
// coordinator (docs/sharding.md).
package shard

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/testutil"
	"repro/internal/workloads"
)

// batteryPair is one (table, query) combination of the battery.
type batteryPair struct {
	label string
	tbl   *table.Table
	req   server.QueryRequest
}

// batteryQueries enumerates the query shapes per battery table: plain
// ORDER BY, GROUP BY with each aggregate, ORDER BY <agg>, a window
// rank, and a filtered group-by.
func batteryQueries(tables []*table.Table) []batteryPair {
	narrow0, narrow99, wide := tables[0], tables[1], tables[2]
	var pairs []batteryPair
	add := func(tbl *table.Table, label string, req server.QueryRequest) {
		req.Table = tbl.Name
		req.ID = tbl.Name + "." + label
		pairs = append(pairs, batteryPair{label: req.ID, tbl: tbl, req: req})
	}
	for _, tbl := range []*table.Table{narrow0, narrow99} {
		add(tbl, "ob", server.QueryRequest{Kind: "orderby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b", Desc: true}}})
		add(tbl, "gb_count", server.QueryRequest{Kind: "groupby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b"}},
			Agg:      &server.AggReq{Kind: "count"}})
		add(tbl, "gb_sum_oba", server.QueryRequest{Kind: "groupby",
			SortCols:   []server.SortColReq{{Name: "b", Desc: true}, {Name: "a"}},
			Agg:        &server.AggReq{Kind: "sum", Col: "v"},
			OrderByAgg: true})
		add(tbl, "gb_avg", server.QueryRequest{Kind: "groupby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b"}},
			Agg:      &server.AggReq{Kind: "avg", Col: "v"}})
		add(tbl, "win", server.QueryRequest{Kind: "partitionby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "b"}},
			Window:   &server.WindowReq{OrderCol: "c", Desc: true}})
		add(tbl, "gb_filter", server.QueryRequest{Kind: "groupby",
			SortCols: []server.SortColReq{{Name: "a"}, {Name: "c"}},
			Filters:  []server.FilterReq{{Col: "f", Op: "ge", Const: 12}},
			Agg:      &server.AggReq{Kind: "count"}})
	}
	add(wide, "gb_count", server.QueryRequest{Kind: "groupby",
		SortCols: []server.SortColReq{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}, {Name: "w4"}, {Name: "w5"}},
		Agg:      &server.AggReq{Kind: "count"}})
	add(wide, "gb_avg", server.QueryRequest{Kind: "groupby",
		SortCols: []server.SortColReq{{Name: "w2", Desc: true}, {Name: "w1"}, {Name: "w3"}, {Name: "w4"}, {Name: "w5"}},
		Agg:      &server.AggReq{Kind: "avg", Col: "v"}})
	add(wide, "win", server.QueryRequest{Kind: "partitionby",
		SortCols: []server.SortColReq{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}, {Name: "w4"}},
		Window:   &server.WindowReq{OrderCol: "w5"}})
	add(wide, "ob", server.QueryRequest{Kind: "orderby",
		SortCols: []server.SortColReq{{Name: "w1"}, {Name: "w2", Desc: true}}})
	return pairs
}

// batteryCell is one LIMIT/OFFSET window.
type batteryCell struct {
	label  string
	limit  *int
	offset int
}

func batteryCells() []batteryCell {
	return []batteryCell{
		{label: "full"},
		{label: "limit0", limit: intp(0)},
		{label: "limit7", limit: intp(7)},
		{label: "limit13off5", limit: intp(13), offset: 5},
		{label: "off11", offset: 11},
	}
}

var batteryWorkers = []int{1, 4, 8}

// TestCrossShardDifferentialBattery is the tentpole's proof: for every
// (query, window, workers) cell, the {1,2,3,4}-shard coordinator's
// result bytes equal the direct single-node engine run's — including
// the tie-heavy duplicate table, the >64-bit wide-key table, and the
// replayed (plan-cache-hit) pin path.
func TestCrossShardDifferentialBattery(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tables := batteryTables(t)
	pairs := batteryQueries(tables)
	cells := batteryCells()

	// The oracle depends on neither the topology nor the worker count
	// (engine output is worker-invariant — its own battery proves that):
	// compute it once per (query, window). Every worker sweep comparing
	// against it then also re-asserts worker-invariance of the sharded
	// path.
	okey := func(pair, cell string) string { return pair + "|" + cell }
	oracle := make(map[string][]byte)
	for _, p := range pairs {
		for _, c := range cells {
			req := p.req
			req.Limit, req.Offset = c.limit, c.offset
			oracle[okey(p.label, c.label)] = runOracle(t, p.tbl, req, 4)
		}
	}

	oneShard := make(map[string][]byte)
	ctx := context.Background()
	for _, nShards := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			coord, done := newTopology(t, tables, nShards, Config{})
			defer done()
			// Pin keys the fresh coordinator has cached so far. The key
			// excludes the aggregate (the search never sees it), so e.g.
			// gb_count and gb_avg over the same sort columns legitimately
			// share a pin — the expectation must model that.
			seen := make(map[string]bool)
			for _, p := range pairs {
				for _, c := range cells {
					for _, w := range batteryWorkers {
						k := fmt.Sprintf("%s|%s|w%d", p.label, c.label, w)
						req := p.req
						req.Limit, req.Offset, req.Workers = c.limit, c.offset, w
						limit0 := c.limit != nil && *c.limit == 0
						var pk string
						if !limit0 {
							q, err := req.ToEngineQuery()
							if err != nil {
								t.Fatal(err)
							}
							widths, err := server.SortColWidths(p.tbl, q)
							if err != nil {
								t.Fatal(err)
							}
							pk = server.PlanKey(p.tbl, q, widths, w, -1, testMaxPlans, c.limit, c.offset)
						}

						res, err := coord.Run(ctx, req)
						if err != nil {
							t.Fatalf("%s: %v", k, err)
						}
						if wantHit := !limit0 && seen[pk]; res.PlanCacheHit != wantHit {
							t.Errorf("%s: PlanCacheHit=%v, want %v", k, res.PlanCacheHit, wantHit)
						}
						if !limit0 {
							seen[pk] = true
						}
						got := canonServer(t, res)
						if want := oracle[okey(p.label, c.label)]; !bytes.Equal(got, want) {
							t.Errorf("%s: %d-shard result diverges from the single-node engine\n got: %s\nwant: %s", k, nShards, got, want)
						}
						if nShards == 1 {
							oneShard[k] = got
						} else if !bytes.Equal(got, oneShard[k]) {
							t.Errorf("%s: %d-shard result diverges from the 1-shard coordinator", k, nShards)
						}

						// Cached pass: the pinned choice replays from the
						// coordinator's cache; bytes must not move. LIMIT 0
						// runs no search and must never report a hit.
						if w != 4 {
							continue
						}
						res2, err := coord.Run(ctx, req)
						if err != nil {
							t.Fatalf("%s cached: %v", k, err)
						}
						if res2.PlanCacheHit == limit0 {
							t.Errorf("%s cached: PlanCacheHit=%v, want %v", k, res2.PlanCacheHit, !limit0)
						}
						if got2 := canonServer(t, res2); !bytes.Equal(got2, oracle[okey(p.label, c.label)]) {
							t.Errorf("%s: cached pin replay changed the result bytes", k)
						}
					}
				}
			}
		})
	}
}

// TestCrossShardTPCHWorkload replays the full TPC-H workload battery —
// the same queries the single-node differential suite runs — through a
// 3-shard topology.
func TestCrossShardTPCHWorkload(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tbl := testutilTPCH(t, 4001)
	items := workloads.TPCHQueries(tbl, "")
	coord, done := newTopology(t, []*table.Table{tbl}, 3, Config{})
	defer done()

	const workers = 4
	ctx := context.Background()
	for _, it := range items {
		res, err := engine.RunContext(ctx, tbl, it.Query, engine.Options{
			Massaging: true, Model: server.BuiltinModel(), Rho: -1,
			MaxPlans: testMaxPlans, Workers: workers,
		})
		if err != nil {
			t.Fatalf("direct %s: %v", it.ID, err)
		}
		want := canonEngine(t, res)

		req := wireRequest(t, tbl.Name, it.Query, workers)
		got, err := coord.Run(ctx, req)
		if err != nil {
			t.Fatalf("sharded %s: %v", it.ID, err)
		}
		if g := canonServer(t, got); !bytes.Equal(g, want) {
			t.Errorf("%s: 3-shard result diverges from the single-node engine\n got: %s\nwant: %s", it.ID, g, want)
		}
	}
}
