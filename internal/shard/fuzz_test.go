package shard

// FuzzShardMerge fuzzes the coordinator's trust boundary: the per-shard
// group-table decode (validateGroups) and the cross-shard merge behind
// it. Raw mode feeds arbitrary decoded bytes straight in — the merge
// must either reject them as errShardInvalid or produce a well-formed
// combined table, never panic or corrupt. Canon mode repairs the fuzz
// input into valid per-shard tables and then requires the full
// differential properties: mergeGroups equals a naive sort-and-combine
// reference, and the packed-64 and wide lexicographic merge paths
// produce the identical flat order.

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/column"
)

// decodeSpec derives a mergeSpec from the shape word: 1..3 columns of
// widths 2..8 bits, per-column descending flags, and a rotated (and
// possibly reversed) clause-to-sort-position permutation.
func decodeSpec(shape uint16) mergeSpec {
	m := int(shape)%3 + 1
	sp := mergeSpec{order: make([]int, m), widths: make([]int, m), desc: make([]bool, m)}
	for c := 0; c < m; c++ {
		sp.widths[c] = 2 + int(shape>>(2+uint(c)*3))%7
		sp.desc[c] = shape>>(11+uint(c))&1 == 1
	}
	rot := int(shape>>14) % m
	for i := 0; i < m; i++ {
		sp.order[i] = (i + rot) % m
	}
	if shape>>13&1 == 1 {
		for i, j := 0, m-1; i < j; i, j = i+1, j-1 {
			sp.order[i], sp.order[j] = sp.order[j], sp.order[i]
		}
	}
	return sp
}

// decodeParts slices the fuzz bytes into 1..4 per-shard group tables.
// canon repairs each part into a valid table: codes masked to their
// widths, groups sorted by massaged key, duplicate keys dropped.
func decodeParts(data []byte, sp mergeSpec, canon, withAux bool) []groupsPart {
	m := len(sp.order)
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nParts := int(next())%4 + 1
	parts := make([]groupsPart, nParts)
	for pi := range parts {
		cnt := int(next()) % 8
		p := groupsPart{}
		for g := 0; g < cnt; g++ {
			vec := make([]uint64, m)
			for c := 0; c < m; c++ {
				v := uint64(next())
				if canon {
					v &= column.Mask(sp.widths[c])
				}
				vec[c] = v
			}
			p.keys = append(p.keys, vec)
			p.agg = append(p.agg, uint64(next())%100+1)
			if withAux {
				p.aux = append(p.aux, uint64(next())%1000)
			}
		}
		if canon && len(p.keys) > 0 {
			idx := make([]int, len(p.keys))
			for i := range idx {
				idx[i] = i
			}
			a, b := make([]uint64, m), make([]uint64, m)
			sort.SliceStable(idx, func(x, y int) bool {
				sp.massage(p.keys[idx[x]], a)
				sp.massage(p.keys[idx[y]], b)
				return compareVec(a, b) < 0
			})
			q := groupsPart{}
			for _, i := range idx {
				if len(q.keys) > 0 && sameClauseKey(q.keys[len(q.keys)-1], p.keys[i]) {
					continue
				}
				q.keys = append(q.keys, p.keys[i])
				q.agg = append(q.agg, p.agg[i])
				if withAux {
					q.aux = append(q.aux, p.aux[i])
				}
			}
			p = q
		}
		parts[pi] = p
	}
	return parts
}

// referenceMerge is the naive oracle: every group of every part, sorted
// by massaged key, equal clause keys combined by summing.
func referenceMerge(parts []groupsPart, sp mergeSpec, withAux bool) *mergedGroups {
	type row struct {
		vec      []uint64
		agg, aux uint64
	}
	var rows []row
	for _, p := range parts {
		for g := range p.keys {
			r := row{vec: p.keys[g], agg: p.agg[g]}
			if withAux {
				r.aux = p.aux[g]
			}
			rows = append(rows, r)
		}
	}
	m := len(sp.order)
	a, b := make([]uint64, m), make([]uint64, m)
	sort.SliceStable(rows, func(x, y int) bool {
		sp.massage(rows[x].vec, a)
		sp.massage(rows[y].vec, b)
		return compareVec(a, b) < 0
	})
	out := &mergedGroups{}
	for _, r := range rows {
		if len(out.keys) > 0 && sameClauseKey(out.keys[len(out.keys)-1], r.vec) {
			last := len(out.agg) - 1
			out.agg[last] += r.agg
			if withAux {
				out.aux[last] += r.aux
			}
			continue
		}
		out.keys = append(out.keys, r.vec)
		out.agg = append(out.agg, r.agg)
		if withAux {
			out.aux = append(out.aux, r.aux)
		}
	}
	return out
}

func FuzzShardMerge(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(1), []byte{2, 3, 1, 2, 3, 2, 4, 5, 6, 3, 1, 1, 9})
	f.Add(uint16(0x2ffe), []byte("two parts, colliding keys, colliding keys across parts"))
	f.Add(uint16(0xffff), []byte{4, 7, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 7, 7, 7, 7, 7})
	f.Add(uint16(0x1234), []byte{1, 6, 255, 254, 253, 252, 251, 250, 1, 2, 3, 4, 5, 6})

	f.Fuzz(func(t *testing.T, shape uint16, data []byte) {
		sp := decodeSpec(shape)
		withAux := shape>>1&1 == 1
		canon := shape&1 == 1
		parts := decodeParts(data, sp, canon, withAux)
		ctx := context.Background()

		merged, err := mergeGroups(ctx, parts, sp, 2)
		if err != nil {
			if canon {
				t.Fatalf("canonical parts rejected: %v", err)
			}
			if !errors.Is(err, errShardInvalid) {
				t.Fatalf("raw parts rejected with a non-taxonomy error: %v", err)
			}
			return
		}

		// Whatever survived must be a well-formed combined table: strict
		// ascending massaged order, lengths aligned.
		if len(merged.agg) != len(merged.keys) || (merged.aux != nil && len(merged.aux) != len(merged.keys)) {
			t.Fatalf("merged table misaligned: %d keys, %d agg, %d aux", len(merged.keys), len(merged.agg), len(merged.aux))
		}
		m := len(sp.order)
		prev, cur := make([]uint64, m), make([]uint64, m)
		for g, vec := range merged.keys {
			sp.massage(vec, cur)
			if g > 0 && compareVec(prev, cur) >= 0 {
				t.Fatalf("merged group %d out of order", g)
			}
			prev, cur = cur, prev
		}

		if !canon {
			return
		}
		want := referenceMerge(parts, sp, withAux)
		if len(merged.keys) != len(want.keys) {
			t.Fatalf("merged %d groups, reference has %d", len(merged.keys), len(want.keys))
		}
		for g := range want.keys {
			if !sameClauseKey(merged.keys[g], want.keys[g]) || merged.agg[g] != want.agg[g] {
				t.Fatalf("group %d = (%v, %d), reference (%v, %d)",
					g, merged.keys[g], merged.agg[g], want.keys[g], want.agg[g])
			}
			if withAux && merged.aux[g] != want.aux[g] {
				t.Fatalf("group %d aux = %d, reference %d", g, merged.aux[g], want.aux[g])
			}
		}

		// Path equivalence: the packed-64 and wide lexicographic merges
		// must order the same valid runs identically.
		if sp.totalWidth() > 64 {
			return
		}
		var keys []uint64
		var vecs [][]uint64
		runs := []int{0}
		buf := make([]uint64, m)
		for _, p := range parts {
			for _, vec := range p.keys {
				keys = append(keys, sp.pack(vec))
				sp.massage(vec, buf)
				vecs = append(vecs, append([]uint64(nil), buf...))
			}
			runs = append(runs, len(keys))
		}
		packed, err := mergeRows64(ctx, keys, runs, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := mergeWide(ctx, vecs, runs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != len(wide) {
			t.Fatalf("packed merge has %d elements, wide %d", len(packed), len(wide))
		}
		for i := range packed {
			if packed[i] != wide[i] {
				t.Fatalf("flat order diverges at %d: packed %d, wide %d", i, packed[i], wide[i])
			}
		}
	})
}
