// Wire surface of the coordinator: the same HTTP/JSON protocol as a
// single mcsd (a client cannot tell a coordinator from a daemon), with
// the coordinator's error taxonomy behind it — shard_unavailable rides
// a 503 with Retry-After, a malformed shard response is a 502.
package shard

import (
	"bytes"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/server"
)

// maxRequestBytes bounds a request body read, as on the single node.
const maxRequestBytes = 1 << 20

// Handler returns the coordinator's HTTP mux: the single-node endpoint
// set, minus the admission/breaker readiness detail the coordinator
// does not have (it admits nothing itself — the shards do).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", c.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /tables", c.handleTables)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /livez", c.handleLivez)
	mux.HandleFunc("GET /readyz", c.handleHealthz)
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		c.writeError(w, err)
		return
	}
	req, err := server.ParseQueryRequest(body)
	if err != nil {
		c.writeError(w, err)
		return
	}
	id, err := c.Submit(*req)
	if err != nil {
		c.writeError(w, err)
		return
	}
	server.WriteJSON(w, http.StatusAccepted, map[string]string{"job_id": id})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := c.Status(r.PathValue("id"))
	if err != nil {
		c.writeError(w, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := c.Result(r.PathValue("id"))
	if err != nil {
		c.writeError(w, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleTables(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string][]string{"tables": c.cfg.Registry.Names()})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		return
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		server.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "shards": fmt.Sprintf("%d", len(c.cfg.Shards))})
}

// handleLivez is pure liveness, as on the single node.
func (c *Coordinator) handleLivez(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// readBody reads at most maxRequestBytes of the request body.
func readBody(r *http.Request) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, maxRequestBytes)); err != nil {
		return nil, fmt.Errorf("%w: %v", server.ErrInvalidRequest, err)
	}
	return buf.Bytes(), nil
}

// writeError emits the single-node error body shape under the
// coordinator's classification.
func (c *Coordinator) writeError(w http.ResponseWriter, err error) {
	status := c.statusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	server.WriteJSON(w, status, map[string]any{
		"error":     err.Error(),
		"kind":      c.errorKind(err),
		"retryable": c.retryable(err),
	})
}
