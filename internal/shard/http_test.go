// The coordinator's wire surface: a client that speaks mcsd's protocol
// must get the single-node answer and the single-node error taxonomy
// from a coordinator without being able to tell the difference.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/testutil"
)

// TestCoordinatorHTTPRoundTrip drives submit → poll → result through
// the retrying client against a 3-shard topology and compares against
// the direct engine oracle.
func TestCoordinatorHTTPRoundTrip(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tables := batteryTables(t)
	coord, done := newTopology(t, tables, 3, Config{})
	hs := httptest.NewServer(coord.Handler())
	defer done()
	defer hs.Close()

	req := server.QueryRequest{
		Table:    "narrow99",
		Kind:     "groupby",
		SortCols: []server.SortColReq{{Name: "a"}, {Name: "b"}},
		Agg:      &server.AggReq{Kind: "avg", Col: "v"},
		Workers:  4,
	}
	want := runOracle(t, tables[1], req, 4)

	cl, err := client.New(client.Config{BaseURL: hs.URL, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonServer(t, res); !bytes.Equal(got, want) {
		t.Errorf("wire result diverges from the engine oracle\n got: %s\nwant: %s", got, want)
	}
}

// TestCoordinatorHTTPErrors covers the coordinator's error taxonomy on
// the wire: unknown jobs, jobs failed by validation-at-execution, the
// reserved col_order field, and malformed bodies.
func TestCoordinatorHTTPErrors(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tables := batteryTables(t)
	coord, done := newTopology(t, tables, 2, Config{})
	hs := httptest.NewServer(coord.Handler())
	defer done()
	defer hs.Close()

	get := func(path string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, body
	}
	post := func(payload string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/query", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, body
	}

	resp, body := get("/jobs/zz")
	if resp.StatusCode != http.StatusNotFound || body["kind"] != "not_found" {
		t.Errorf("unknown job: status %d kind %v, want 404/not_found", resp.StatusCode, body["kind"])
	}
	resp, body = get("/jobs/zz/result")
	if resp.StatusCode != http.StatusNotFound || body["kind"] != "not_found" {
		t.Errorf("unknown job result: status %d kind %v, want 404/not_found", resp.StatusCode, body["kind"])
	}

	resp, body = post("{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d (%v), want 400", resp.StatusCode, body)
	}

	// A col_order the single-node Validate already refuses (it reorders
	// an orderby) fails at submit.
	resp, body = post(`{"table":"narrow0","kind":"orderby","sort_cols":[{"name":"a"},{"name":"b"}],"col_order":[1,0]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reordering col_order: status %d (%v), want 400", resp.StatusCode, body)
	}

	// Failures the coordinator only detects at execution time surface
	// through the job state with the single-node kind and no retry.
	wantKind := server.ErrorKind(server.ErrInvalidRequest)
	waitFailed := func(label, payload string) {
		t.Helper()
		resp, body := post(payload)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit status %d (%v)", label, resp.StatusCode, body)
		}
		id := body["job_id"].(string)
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, st := get("/jobs/" + id)
			if st["state"] == string(server.JobFailed) {
				if st["kind"] != wantKind {
					t.Errorf("%s: kind %v, want %q", label, st["kind"], wantKind)
				}
				if st["retryable"] == true {
					t.Errorf("%s: marked retryable", label)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: job %s never failed: %v", label, id, st)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFailed("unknown table",
		`{"table":"nope","kind":"orderby","sort_cols":[{"name":"a"}]}`)
	// Even a col_order Validate allows (the identity) is reserved for
	// the coordinator's own sub-queries.
	waitFailed("reserved col_order",
		`{"table":"narrow0","kind":"orderby","sort_cols":[{"name":"a"},{"name":"b"}],"col_order":[0,1]}`)
}
