// Cross-shard merging. Shards return results sorted in the pinned
// column order; the coordinator rebuilds the massaged sort keys and
// merges the pre-sorted per-shard runs with the same machinery the
// engine's sort uses — mergesort.ParallelMerge for full results,
// ParallelMergeTopK with its tie-extended cut for LIMIT/OFFSET windows
// — so the gathered output is the single-node output, byte for byte.
package shard

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/column"
	"repro/internal/mergesort"
)

// errShardInvalid classifies a structurally broken shard response —
// mismatched lengths, out-of-range oids, keys out of sort order. Not
// retryable: the same shard would return the same bytes again.
var errShardInvalid = errors.New("shard: invalid shard response")

// mergeCtxStride is how many merge-loop iterations run between context
// polls in the sequential wide-key paths.
const mergeCtxStride = 1 << 12

// mergeSpec says how to turn a clause-order key vector into the sort
// key the shards sorted by: permute by order (the pinned ColOrder),
// complement descending columns, and concatenate widths — the earlier
// sort column in the higher bits, exactly like the engine's massage.
type mergeSpec struct {
	order  []int  // pinned ColOrder: position i sorts clause column order[i]
	widths []int  // bit width per clause position
	desc   []bool // descending flag per clause position
}

// totalWidth is the concatenated key width; <= 64 enables the packed
// parallel merge paths.
func (sp mergeSpec) totalWidth() int {
	w := 0
	for _, x := range sp.widths {
		w += x
	}
	return w
}

// pack builds the packed massaged key of one clause-order vector.
// Callers must have checked totalWidth() <= 64.
func (sp mergeSpec) pack(vals []uint64) uint64 {
	var k uint64
	for _, c := range sp.order {
		v := vals[c] & column.Mask(sp.widths[c])
		if sp.desc[c] {
			v = column.Complement(v, sp.widths[c])
		}
		k = k<<uint(sp.widths[c]) | v
	}
	return k
}

// massage fills out with the massaged vector in sort order (for the
// wide-key lexicographic compare).
func (sp mergeSpec) massage(vals []uint64, out []uint64) {
	for i, c := range sp.order {
		v := vals[c] & column.Mask(sp.widths[c])
		if sp.desc[c] {
			v = column.Complement(v, sp.widths[c])
		}
		out[i] = v
	}
}

// compareVec is the lexicographic order of equal-length massaged
// vectors.
func compareVec(a, b []uint64) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// groupsPart is one shard's decoded group table: clause-order key
// vectors, the primary aggregate, and an optional auxiliary aggregate
// (the sum vector of an avg query, merged alongside the count).
type groupsPart struct {
	keys [][]uint64
	agg  []uint64
	aux  []uint64
}

// validateGroups checks one shard's group table against the query
// shape before its values reach the merge: vector lengths, key codes
// inside their column widths, and strict ascending massaged order
// (groups are distinct keys, so equal adjacent keys are as broken as
// descending ones). Everything a confused or truncated shard response
// could get wrong fails here with errShardInvalid instead of
// corrupting the merged result.
func validateGroups(p groupsPart, sp mergeSpec) error {
	if len(p.keys) != len(p.agg) {
		return fmt.Errorf("%w: %d group keys, %d aggregates", errShardInvalid, len(p.keys), len(p.agg))
	}
	if p.aux != nil && len(p.aux) != len(p.agg) {
		return fmt.Errorf("%w: %d aux aggregates for %d groups", errShardInvalid, len(p.aux), len(p.agg))
	}
	m := len(sp.order)
	prev := make([]uint64, m)
	cur := make([]uint64, m)
	for g, vec := range p.keys {
		if len(vec) != m {
			return fmt.Errorf("%w: group %d has %d key columns, want %d", errShardInvalid, g, len(vec), m)
		}
		for c, v := range vec {
			if v&^column.Mask(sp.widths[c]) != 0 {
				return fmt.Errorf("%w: group %d key column %d value %d exceeds width %d", errShardInvalid, g, c, v, sp.widths[c])
			}
		}
		sp.massage(vec, cur)
		if g > 0 && compareVec(prev, cur) >= 0 {
			return fmt.Errorf("%w: group %d out of sort order", errShardInvalid, g)
		}
		prev, cur = cur, prev
	}
	return nil
}

// mergedGroups is the combined cross-shard group table, in global sort
// order. agg and aux are summed across shards per distinct key — for
// count and sum aggregates the sum IS the global aggregate; for avg
// the caller divides aux (global sum) by agg (global count), which is
// exactly the engine's integer arithmetic.
type mergedGroups struct {
	keys [][]uint64
	agg  []uint64
	aux  []uint64
}

// mergeGroups merges per-shard group tables. Equal keys across shards
// combine (every shard's instance of a group within any group-rank cut
// is inside that shard's local cut, so the combination is complete —
// docs/sharding.md); run-order stability is irrelevant for groups
// because equal elements collapse into one output group.
func mergeGroups(ctx context.Context, parts []groupsPart, sp mergeSpec, workers int) (*mergedGroups, error) {
	hasAux := false
	total := 0
	for _, p := range parts {
		if err := ctx.Err(); err != nil { // validateGroups scans every group
			return nil, err
		}
		if err := validateGroups(p, sp); err != nil {
			return nil, err
		}
		total += len(p.keys)
		if p.aux != nil {
			hasAux = true
		}
	}
	if hasAux {
		for _, p := range parts {
			if p.aux == nil && len(p.keys) > 0 {
				return nil, fmt.Errorf("%w: aux aggregate present on some shards only", errShardInvalid)
			}
		}
	}
	out := &mergedGroups{}
	if total == 0 {
		return out, nil
	}

	flat, err := mergeFlatGroups(ctx, parts, sp, total, workers)
	if err != nil {
		return nil, err
	}

	// Combine adjacent equal keys. The flat order is globally sorted,
	// so one forward pass sees every instance of a key consecutively.
	offsets := partOffsets(len(parts), func(i int) int { return len(parts[i].keys) })
	locate := func(f uint32) (int, int) { return locateFlat(offsets, f) }
	var curVec []uint64
	for i, f := range flat {
		if i&(mergeCtxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pi, gi := locate(f)
		vec := parts[pi].keys[gi]
		if curVec != nil && sameClauseKey(curVec, vec) {
			last := len(out.agg) - 1
			out.agg[last] += parts[pi].agg[gi]
			if hasAux {
				out.aux[last] += parts[pi].aux[gi]
			}
			continue
		}
		curVec = vec
		out.keys = append(out.keys, append([]uint64(nil), vec...))
		out.agg = append(out.agg, parts[pi].agg[gi])
		if hasAux {
			out.aux = append(out.aux, parts[pi].aux[gi])
		}
	}
	return out, nil
}

// sameClauseKey: equality of clause-order key vectors. Massaging is
// injective per column, so clause-order equality and sort-order
// equality agree.
func sameClauseKey(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeFlatGroups produces the globally sorted order of all parts'
// groups as flat indices (part boundaries at cumulative counts).
func mergeFlatGroups(ctx context.Context, parts []groupsPart, sp mergeSpec, total, workers int) ([]uint32, error) {
	if sp.totalWidth() <= 64 {
		keys := make([]uint64, 0, total)
		runs := []int{0}
		for _, p := range parts {
			for _, vec := range p.keys {
				if len(keys)&(mergeCtxStride-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				keys = append(keys, sp.pack(vec))
			}
			runs = append(runs, len(keys))
		}
		return mergeRows64(ctx, keys, runs, 0, workers)
	}
	vecs := make([][]uint64, 0, total)
	runs := []int{0}
	buf := make([]uint64, len(sp.order))
	for _, p := range parts {
		for _, vec := range p.keys {
			if len(vecs)&(mergeCtxStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			sp.massage(vec, buf)
			vecs = append(vecs, append([]uint64(nil), buf...))
		}
		runs = append(runs, len(vecs))
	}
	return mergeWide(ctx, vecs, runs, 0)
}

// mergeRows64 merges pre-sorted runs of packed 64-bit keys and returns
// the merged flat-index order. keys is the concatenation of the runs
// (runs[0]=0 … runs[len-1]=len(keys)). limit > 0 cuts the merge at
// that output rank via the tie-extended ParallelMergeTopK and trims to
// exactly limit elements — sound because keys[0:limit] of the
// tie-extended cut equal the full merge's first limit elements, and
// the run-index-stable tie order is the ascending-global-oid canonical
// order (range partitioning puts lower global oids in lower runs).
func mergeRows64(ctx context.Context, keys []uint64, runs []int, limit, workers int) ([]uint32, error) {
	n := len(keys)
	if n == 0 {
		return nil, nil
	}
	oids := make([]uint32, n)
	for i := range oids {
		if i&(mergeCtxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		oids[i] = uint32(i)
	}
	if limit > 0 && limit < n {
		m, err := mergesort.ParallelMergeTopKContext(ctx, 64, keys, oids, runs, limit, mergesort.Params{}, workers)
		if err != nil {
			return nil, err
		}
		if m > limit {
			m = limit
		}
		return oids[:m], nil
	}
	if err := mergesort.ParallelMergeContext(ctx, 64, keys, oids, runs, workers); err != nil {
		return nil, err
	}
	return oids, nil
}

// mergeWide is the fallback k-way merge for concatenated key widths
// beyond 64 bits: massaged key vectors compared lexicographically,
// ties resolved toward the lower run — the same (key, run) order the
// packed paths produce. Sequential: wide clauses are rare and the
// element count here is per-shard-truncated already.
func mergeWide(ctx context.Context, vecs [][]uint64, runs []int, limit int) ([]uint32, error) {
	n := len(vecs)
	if n == 0 {
		return nil, nil
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	heads := make([]int, len(runs)-1)
	for r := range heads {
		heads[r] = runs[r]
	}
	out := make([]uint32, 0, limit)
	for len(out) < limit {
		if len(out)&(mergeCtxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		best := -1
		for r := range heads {
			if heads[r] >= runs[r+1] {
				continue
			}
			if best < 0 || compareVec(vecs[heads[r]], vecs[heads[best]]) < 0 {
				best = r
			}
		}
		if best < 0 {
			break
		}
		out = append(out, uint32(heads[best]))
		heads[best]++
	}
	return out, nil
}

// partOffsets returns the cumulative start offset of each part in the
// flat index space, plus the total as the final entry.
func partOffsets(parts int, size func(int) int) []int {
	off := make([]int, parts+1)
	for i := 0; i < parts; i++ {
		off[i+1] = off[i] + size(i)
	}
	return off
}

// locateFlat maps a flat index back to (part, local index).
func locateFlat(offsets []int, f uint32) (int, int) {
	lo, hi := 0, len(offsets)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if int(f) >= offsets[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, int(f) - offsets[lo]
}
