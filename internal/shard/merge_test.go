package shard

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/chaos"
)

// TestValidateGroupsRejects: every way a confused or truncated shard
// response can be structurally wrong must fail with errShardInvalid
// before its values reach the merge.
func TestValidateGroupsRejects(t *testing.T) {
	sp := mergeSpec{order: []int{0, 1}, widths: []int{4, 4}, desc: []bool{false, false}}
	cases := []struct {
		name string
		p    groupsPart
		ok   bool
	}{
		{name: "valid", ok: true,
			p: groupsPart{keys: [][]uint64{{1, 2}, {2, 1}}, agg: []uint64{3, 4}}},
		{name: "valid_empty", ok: true, p: groupsPart{}},
		{name: "agg_length_mismatch",
			p: groupsPart{keys: [][]uint64{{1, 2}}, agg: []uint64{3, 4}}},
		{name: "aux_length_mismatch",
			p: groupsPart{keys: [][]uint64{{1, 2}}, agg: []uint64{3}, aux: []uint64{5, 6}}},
		{name: "wrong_key_arity",
			p: groupsPart{keys: [][]uint64{{1, 2, 3}}, agg: []uint64{3}}},
		{name: "code_exceeds_width",
			p: groupsPart{keys: [][]uint64{{1, 16}}, agg: []uint64{3}}},
		{name: "descending_keys",
			p: groupsPart{keys: [][]uint64{{2, 0}, {1, 0}}, agg: []uint64{3, 4}}},
		{name: "duplicate_adjacent_keys",
			p: groupsPart{keys: [][]uint64{{1, 2}, {1, 2}}, agg: []uint64{3, 4}}},
	}
	for _, tc := range cases {
		err := validateGroups(tc.p, sp)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, errShardInvalid) {
			t.Errorf("%s: err = %v, want errShardInvalid", tc.name, err)
		}
	}
}

// TestValidateGroupsDescOrder: the order check runs over MASSAGED keys,
// so a descending sort column must arrive in descending raw order.
func TestValidateGroupsDescOrder(t *testing.T) {
	sp := mergeSpec{order: []int{0, 1}, widths: []int{4, 4}, desc: []bool{true, false}}
	ok := groupsPart{keys: [][]uint64{{2, 0}, {1, 0}}, agg: []uint64{1, 1}}
	if err := validateGroups(ok, sp); err != nil {
		t.Errorf("descending raw order on a desc column rejected: %v", err)
	}
	bad := groupsPart{keys: [][]uint64{{1, 0}, {2, 0}}, agg: []uint64{1, 1}}
	if err := validateGroups(bad, sp); !errors.Is(err, errShardInvalid) {
		t.Errorf("ascending raw order on a desc column accepted: %v", err)
	}
}

// TestMergeGroupsCombines: equal keys across shards collapse into one
// group with summed primary and auxiliary aggregates, in global sort
// order.
func TestMergeGroupsCombines(t *testing.T) {
	sp := mergeSpec{order: []int{0, 1}, widths: []int{4, 4}, desc: []bool{false, false}}
	parts := []groupsPart{
		{keys: [][]uint64{{1, 1}, {2, 2}}, agg: []uint64{2, 3}, aux: []uint64{10, 20}},
		{keys: [][]uint64{{1, 1}, {3, 3}}, agg: []uint64{5, 7}, aux: []uint64{30, 40}},
	}
	m, err := mergeGroups(context.Background(), parts, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := [][]uint64{{1, 1}, {2, 2}, {3, 3}}
	wantAgg := []uint64{7, 3, 7}
	wantAux := []uint64{40, 20, 40}
	if len(m.keys) != len(wantKeys) {
		t.Fatalf("merged %d groups, want %d", len(m.keys), len(wantKeys))
	}
	for g := range wantKeys {
		if !sameClauseKey(m.keys[g], wantKeys[g]) || m.agg[g] != wantAgg[g] || m.aux[g] != wantAux[g] {
			t.Errorf("group %d = (%v, %d, %d), want (%v, %d, %d)",
				g, m.keys[g], m.agg[g], m.aux[g], wantKeys[g], wantAgg[g], wantAux[g])
		}
	}
}

func TestMergeGroupsRejectsPartialAux(t *testing.T) {
	sp := mergeSpec{order: []int{0}, widths: []int{4}, desc: []bool{false}}
	parts := []groupsPart{
		{keys: [][]uint64{{1}}, agg: []uint64{2}, aux: []uint64{10}},
		{keys: [][]uint64{{2}}, agg: []uint64{3}},
	}
	if _, err := mergeGroups(context.Background(), parts, sp, 1); !errors.Is(err, errShardInvalid) {
		t.Errorf("aux on one shard only: err = %v, want errShardInvalid", err)
	}
}

// TestMergeWideMatchesPacked: the wide lexicographic fallback and the
// packed-64 parallel path implement the same (key, run) order — run a
// spec whose total width fits both, with heavy duplication so ties
// cross runs, and require identical flat-index output, with and
// without a limit cut.
func TestMergeWideMatchesPacked(t *testing.T) {
	sp := mergeSpec{order: []int{2, 0, 1}, widths: []int{9, 7, 5}, desc: []bool{false, true, false}}
	rng := chaos.NewRand(42)
	const runLen = 40
	var vecsRaw [][]uint64
	runs := []int{0}
	for r := 0; r < 3; r++ {
		run := make([][]uint64, runLen)
		for i := range run {
			// Domain 3 per column: most keys collide across runs.
			run[i] = []uint64{rng.Uint64() % 3, rng.Uint64() % 3, rng.Uint64() % 3}
		}
		sort.SliceStable(run, func(a, b int) bool { return sp.pack(run[a]) < sp.pack(run[b]) })
		vecsRaw = append(vecsRaw, run...)
		runs = append(runs, len(vecsRaw))
	}

	keys := make([]uint64, len(vecsRaw))
	massaged := make([][]uint64, len(vecsRaw))
	buf := make([]uint64, len(sp.order))
	for i, vec := range vecsRaw {
		keys[i] = sp.pack(vec)
		sp.massage(vec, buf)
		massaged[i] = append([]uint64(nil), buf...)
	}

	ctx := context.Background()
	for _, limit := range []int{0, 17} {
		packed, err := mergeRows64(ctx, append([]uint64(nil), keys...), runs, limit, 2)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := mergeWide(ctx, massaged, runs, limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != len(wide) {
			t.Fatalf("limit=%d: packed %d elements, wide %d", limit, len(packed), len(wide))
		}
		for i := range packed {
			if packed[i] != wide[i] {
				t.Fatalf("limit=%d: order diverges at %d: packed %d, wide %d", limit, i, packed[i], wide[i])
			}
		}
		if limit > 0 && len(packed) != limit {
			t.Errorf("limit=%d: got %d elements", limit, len(packed))
		}
	}
}

// TestMergeRows64LimitIsPrefix: the tie-extended cut trimmed to the
// limit must equal the full merge's prefix — that equality is what lets
// the coordinator merge per-shard pre-cut windows.
func TestMergeRows64LimitIsPrefix(t *testing.T) {
	rng := chaos.NewRand(7)
	var keys []uint64
	runs := []int{0}
	for r := 0; r < 4; r++ {
		run := make([]uint64, 33)
		for i := range run {
			run[i] = rng.Uint64() % 5
		}
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
		keys = append(keys, run...)
		runs = append(runs, len(keys))
	}
	ctx := context.Background()
	full, err := mergeRows64(ctx, append([]uint64(nil), keys...), runs, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 9, 50, len(keys), len(keys) + 10} {
		cut, err := mergeRows64(ctx, append([]uint64(nil), keys...), runs, limit, 2)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := limit
		if wantLen > len(full) {
			wantLen = len(full)
		}
		if len(cut) != wantLen {
			t.Fatalf("limit=%d: got %d elements, want %d", limit, len(cut), wantLen)
		}
		for i := range cut {
			if cut[i] != full[i] {
				t.Fatalf("limit=%d: element %d is flat %d, full merge has %d", limit, i, cut[i], full[i])
			}
		}
	}
}

func TestLocateFlat(t *testing.T) {
	// Parts of sizes 3, 0, 4, 1 — the empty middle part must be skipped.
	offsets := []int{0, 3, 3, 7, 8}
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {2, 0}, {2, 1}, {2, 2}, {2, 3}, {3, 0}}
	for f, w := range want {
		pi, li := locateFlat(offsets, uint32(f))
		if pi != w[0] || li != w[1] {
			t.Errorf("locateFlat(%d) = (%d,%d), want (%d,%d)", f, pi, li, w[0], w[1])
		}
	}
}
