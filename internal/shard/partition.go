// Package shard is the serving-topology layer of mcsd: a WideTable
// range-partitioned across N unmodified mcsd daemons, with a
// coordinator that fans each query out over the retrying client and
// merges the per-shard sorted results back into the single-node answer
// (docs/sharding.md).
//
// Range partitioning — shard i owns the contiguous rows
// [i·n/N, (i+1)·n/N) — is what makes the merge byte-identical to a
// single-node run rather than merely equivalent: the engine
// canonicalizes ties to ascending row oid, a shard's local oids map to
// global oids by adding the range base, and the coordinator's
// run-index-stable merge (shards in range order) therefore reproduces
// ascending-global-oid tie order without shipping any tie-break data.
// Hash partitioning would interleave oids and break that argument.
package shard

import (
	"fmt"

	"repro/internal/column"
	"repro/internal/table"
)

// Range is a half-open row interval [Lo, Hi) of the full table.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Ranges splits n rows into shards contiguous ranges, sizes differing
// by at most one row (shard i gets [i·n/N, (i+1)·n/N)). The same
// formula runs in the coordinator and in `mcsd -shard-index`, so both
// sides derive the identical partitioning from (n, shards) alone —
// nothing about the topology needs to travel on the wire.
func Ranges(n, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	rs := make([]Range, shards)
	for i := 0; i < shards; i++ {
		rs[i] = Range{Lo: i * n / shards, Hi: (i + 1) * n / shards}
	}
	return rs
}

// Slice materializes one shard's portion of t: the same name and
// column widths over the rows of r. Widths are copied, not re-derived,
// so a shard whose local value range happens to be narrower still
// agrees with its peers (and with the coordinator) on every code's bit
// width — the merge keys depend on it.
func Slice(t *table.Table, r Range) (*table.Table, error) {
	if r.Lo < 0 || r.Hi > t.N || r.Lo > r.Hi {
		return nil, fmt.Errorf("shard: range [%d,%d) outside table %q of %d rows", r.Lo, r.Hi, t.Name, t.N)
	}
	st := table.New(t.Name, r.Len())
	for _, name := range t.Columns() {
		c, err := t.Col(name)
		if err != nil {
			return nil, err
		}
		if err := st.Add(column.FromCodes(c.Name, c.Width, c.Codes[r.Lo:r.Hi])); err != nil {
			return nil, err
		}
	}
	return st, nil
}
