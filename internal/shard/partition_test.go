package shard

import (
	"strings"
	"testing"

	"repro/internal/column"
	"repro/internal/table"
)

// TestRangesPartition checks the partitioning law every other property
// of the topology rests on: contiguous, covering, sizes within one row
// of each other, and exactly the i·n/N formula both the coordinator and
// `mcsd -shard-index` compute independently.
func TestRangesPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1501} {
		for _, shards := range []int{1, 2, 3, 4, 7} {
			rs := Ranges(n, shards)
			if len(rs) != shards {
				t.Fatalf("Ranges(%d,%d): %d ranges", n, shards, len(rs))
			}
			if rs[0].Lo != 0 || rs[len(rs)-1].Hi != n {
				t.Fatalf("Ranges(%d,%d) does not cover [0,%d): %v", n, shards, n, rs)
			}
			minLen, maxLen := n+1, -1
			for i, r := range rs {
				if r.Lo != i*n/shards || r.Hi != (i+1)*n/shards {
					t.Errorf("Ranges(%d,%d)[%d] = %v, want [%d,%d)", n, shards, i, r, i*n/shards, (i+1)*n/shards)
				}
				if i > 0 && r.Lo != rs[i-1].Hi {
					t.Errorf("Ranges(%d,%d): gap between range %d and %d", n, shards, i-1, i)
				}
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
			}
			if maxLen-minLen > 1 {
				t.Errorf("Ranges(%d,%d): sizes spread %d..%d", n, shards, minLen, maxLen)
			}
		}
	}
}

func TestRangesClampsShardCount(t *testing.T) {
	for _, bad := range []int{0, -3} {
		rs := Ranges(10, bad)
		if len(rs) != 1 || rs[0] != (Range{Lo: 0, Hi: 10}) {
			t.Errorf("Ranges(10,%d) = %v, want one full range", bad, rs)
		}
	}
}

// TestSliceRoundTrip: a slice carries the owning range's codes verbatim
// and keeps the FULL table's column width even when the sliced values
// would fit narrower — the merge keys depend on every shard agreeing on
// widths.
func TestSliceRoundTrip(t *testing.T) {
	const n = 11
	codes := []uint64{63, 58, 41, 7, 1, 0, 2, 3, 60, 59, 33}
	tbl := table.New("t", n)
	if err := tbl.Add(column.FromCodes("x", 6, codes)); err != nil {
		t.Fatal(err)
	}

	r := Range{Lo: 3, Hi: 8} // values 7..3: all fit in 3 bits
	st, err := Slice(tbl, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "t" || st.N != r.Len() {
		t.Fatalf("slice is %q/%d rows, want %q/%d", st.Name, st.N, "t", r.Len())
	}
	c, err := st.Col("x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Width != 6 {
		t.Errorf("sliced width %d, want the full table's 6", c.Width)
	}
	for i, v := range c.Codes {
		if v != codes[r.Lo+i] {
			t.Errorf("slice row %d = %d, want %d", i, v, codes[r.Lo+i])
		}
	}
}

func TestSliceRejectsBadRange(t *testing.T) {
	tbl := table.New("t", 5)
	if err := tbl.Add(column.FromCodes("x", 4, []uint64{1, 2, 3, 4, 5})); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Range{{Lo: -1, Hi: 3}, {Lo: 0, Hi: 6}, {Lo: 4, Hi: 3}} {
		if _, err := Slice(tbl, r); err == nil || !strings.Contains(err.Error(), "outside table") {
			t.Errorf("Slice(%v): err = %v, want range error", r, err)
		}
	}
}
