// The coordinator's plan pinning. GROUP BY / PARTITION BY output bytes
// depend on the column permutation the plan search picks, and the
// search consumes table statistics — which differ per shard. Left to
// themselves, two shards could sort the same query in different column
// orders and the gather would compare apples to oranges. The
// coordinator therefore runs the search once, over the full table's
// statistics with the deterministic keystone (MaxPlans + negative
// rho), and replays the winning ColOrder on every shard via the
// col_order wire field. The choice is memoized in a server.PlanCache
// under the single-node plan key extended with the shard topology, so
// re-partitioning can never replay a stale pin.
package shard

import (
	"context"
	"fmt"

	"repro/internal/byteslice"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/table"
)

var (
	obsPinSearches = obs.NewCounter("shard.plan_pin_searches")
	obsPinHits     = obs.NewCounter("shard.plan_pin_cache_hits")
)

// pinnedChoice replicates the engine's choosePlan over the full table:
// same filtered row count, same full-table column statistics, same
// limit teaching, same FixedTail, same Rho/MaxPlans — so its ColOrder
// equals the order a direct single-node run of the same query would
// choose, which is the order the differential battery compares
// against.
func (c *Coordinator) pinnedChoice(ctx context.Context, t *table.Table, req server.QueryRequest, q engine.Query, widths []int, workers int) (planner.Choice, bool, error) {
	key := server.PlanKey(t, q, widths, workers, c.cfg.Rho, c.cfg.MaxPlans, req.Limit, req.Offset) +
		fmt.Sprintf("|shards=%d", len(c.cfg.Shards))
	if choice, ok := c.cache.Get(key); ok {
		obsPinHits.Inc()
		return choice, true, nil
	}

	n, err := filteredCount(ctx, t, q)
	if err != nil {
		return planner.Choice{}, false, err
	}
	st := costmodel.Stats{N: n}
	if req.Limit != nil && *req.Limit > 0 {
		cut := req.Offset + *req.Limit
		if q.Window != nil {
			st.LimitRows = cut
		} else if !q.OrderByAgg {
			st.LimitGroups = cut
		}
	}
	for _, name := range sortColNames(q) {
		cs, err := t.Stats(name)
		if err != nil {
			return planner.Choice{}, false, err
		}
		st.Cols = append(st.Cols, cs)
	}
	search := &planner.Search{Model: c.cfg.Model, Stats: st, Kind: q.Kind, Rho: c.cfg.Rho, MaxPlans: c.cfg.MaxPlans}
	if q.Window != nil {
		search.FixedTail = 1
	}
	obsPinSearches.Inc()
	choice, err := planner.ROGAContext(ctx, search)
	if err != nil {
		return planner.Choice{}, false, err
	}
	c.cache.Put(key, choice)
	return choice, false, nil
}

// filteredCount runs the query's filter scans over the full table and
// counts the selected rows — the engine's search sees the filtered
// row count (Stats.N), so the pin search must too or the two could
// choose different orders.
func filteredCount(ctx context.Context, t *table.Table, q engine.Query) (int, error) {
	if len(q.Filters) == 0 {
		return t.N, nil
	}
	var acc *byteslice.BitVector
	for _, f := range q.Filters {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		bs, err := t.ByteSlice(f.Col)
		if err != nil {
			return 0, err
		}
		var bv *byteslice.BitVector
		if f.Between {
			bv, err = bs.ScanBetween(f.Lo, f.Hi)
		} else {
			bv, err = bs.Scan(f.Op, f.Const)
		}
		if err != nil {
			return 0, err
		}
		if acc == nil {
			acc = bv
		} else {
			acc.And(bv)
		}
	}
	return acc.Count(), nil
}

// sortColNames lists the sort columns in clause order, window order
// column last — the engine's materialization order.
func sortColNames(q engine.Query) []string {
	names := make([]string, 0, len(q.SortCols)+1)
	for _, sc := range q.SortCols {
		names = append(names, sc.Name)
	}
	if q.Window != nil {
		names = append(names, q.Window.OrderCol)
	}
	return names
}
