//go:build soak

package shard

// The cross-shard soak storm: the tier-1 shard storm's invariants —
// zero leaks, typed failures only, retried successes byte-identical to
// the fault-free engine oracle — run for 45 seconds with 16 concurrent
// retrying clients over a 4-shard topology.
//
// Run it with:
//
//	go test -tags soak -race -run TestShardStormSoak -timeout 10m ./internal/shard/
//
// or `make chaos-soak`. Override the seed to reproduce a prior run:
//
//	go test -tags soak -run TestShardStormSoak -shard-chaos-seed 0xDEADBEEF ./internal/shard/

import (
	"flag"
	"testing"
	"time"

	"repro/internal/chaos"
)

var shardSoakSeed = flag.Uint64("shard-chaos-seed", chaos.DefaultSeed, "storm seed for the shard soak run (logged; reuse to reproduce)")

func TestShardStormSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("shard soak storm skipped in -short mode")
	}
	runShardStorm(t, shardStormParams{
		shards:   4,
		clients:  16,
		duration: 45 * time.Second,
		workers:  []int{1, 4, 8},
		chaos: chaos.Config{
			Seed:       *shardSoakSeed,
			PanicProb:  0.005,
			DelayProb:  0.02,
			CancelProb: 0.01,
			MaxDelay:   2 * time.Millisecond,
		},
	})
}
