package shard

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/byteslice"
	"repro/internal/chaos"
	"repro/internal/column"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/table"
)

func TestMain(m *testing.M) {
	obs.Enable()
	os.Exit(m.Run())
}

// testMaxPlans is the counted search budget every side of a battery
// comparison shares — coordinator pin, shard servers, and the direct
// engine oracle. Identical budgets are what the determinism keystone
// requires; the value itself just has to keep the wide-clause searches
// fast under -race.
const testMaxPlans = 1024

// synthCol draws n codes of the given bit width from domain distinct
// values (0 = the full width's range), deterministically from seed.
func synthCol(name string, width, n, domain int, seed uint64) *column.Column {
	rng := chaos.NewRand(seed)
	max := uint64(1)<<uint(width) - 1
	codes := make([]uint64, n)
	for i := range codes {
		v := rng.Uint64()
		if domain > 0 {
			codes[i] = v % uint64(domain)
		} else {
			codes[i] = v & max
		}
	}
	return column.FromCodes(name, width, codes)
}

// batteryTables builds the battery's synthetic tables:
//
//   - narrow0:  mostly-distinct keys, packed sort keys <= 64 bits;
//   - narrow99: ~99% duplicate keys (domains of 3/3/2 values), so ties
//     span shard boundaries — the tie-canonicalization stress;
//   - wide:     five 16-bit key columns, so group merges (80 bits) and
//     window merges (4x16+16 bits) take the wide lexicographic path.
//
// Row counts are odd on purpose: i·n/N ranges are uneven.
func batteryTables(t *testing.T) []*table.Table {
	t.Helper()
	mk := func(name string, n int, cols ...*column.Column) *table.Table {
		tbl := table.New(name, n)
		for _, c := range cols {
			if err := tbl.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}
	const n0 = 1501
	narrow0 := mk("narrow0", n0,
		synthCol("a", 9, n0, 0, 1),
		synthCol("b", 7, n0, 0, 2),
		synthCol("c", 5, n0, 0, 3),
		synthCol("v", 10, n0, 0, 4),
		synthCol("f", 6, n0, 0, 5),
	)
	narrow99 := mk("narrow99", n0,
		synthCol("a", 9, n0, 3, 6),
		synthCol("b", 7, n0, 3, 7),
		synthCol("c", 5, n0, 2, 8),
		synthCol("v", 10, n0, 0, 9),
		synthCol("f", 6, n0, 0, 10),
	)
	const nw = 1203
	wide := mk("wide", nw,
		synthCol("w1", 16, nw, 9, 11),
		synthCol("w2", 16, nw, 7, 12),
		synthCol("w3", 16, nw, 5, 13),
		synthCol("w4", 16, nw, 4, 14),
		synthCol("w5", 16, nw, 6, 15),
		synthCol("v", 10, nw, 0, 16),
	)
	return []*table.Table{narrow0, narrow99, wide}
}

// newTopology spins up nShards single-node servers over Slice'd
// registries plus a coordinator over them, all with the deterministic
// test keystone (builtin model, Rho -1, the same MaxPlans). The
// returned func shuts everything down; call it before the leak check
// runs.
func newTopology(t *testing.T, tables []*table.Table, nShards int, coordCfg Config) (*Coordinator, func()) {
	t.Helper()
	var closers []func()
	urls := make([]string, nShards)
	for i := 0; i < nShards; i++ {
		reg := server.NewRegistry()
		for _, tbl := range tables {
			st, err := Slice(tbl, Ranges(tbl.N, nShards)[i])
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(st); err != nil {
				t.Fatal(err)
			}
		}
		srv, err := server.New(server.Config{
			Registry:      reg,
			Model:         server.BuiltinModel(),
			Rho:           -1,
			MaxPlans:      testMaxPlans,
			MaxConcurrent: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		urls[i] = hs.URL
		closers = append(closers, func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Errorf("shard server shutdown: %v", err)
			}
			hs.Close()
		})
	}

	fullReg := server.NewRegistry()
	for _, tbl := range tables {
		if err := fullReg.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	coordCfg.Registry = fullReg
	coordCfg.Shards = urls
	if coordCfg.Model == nil {
		coordCfg.Model = server.BuiltinModel()
	}
	if coordCfg.Rho == 0 {
		coordCfg.Rho = -1
	}
	if coordCfg.MaxPlans == 0 {
		coordCfg.MaxPlans = testMaxPlans
	}
	if coordCfg.Client.PollInterval == 0 {
		coordCfg.Client.PollInterval = time.Millisecond
	}
	coord, err := New(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, func() {
		if err := coord.Shutdown(context.Background()); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

// resultData is the canonical comparison form: exactly the data fields
// the byte-identity claim covers. Metadata (plan string, timings,
// job ids) may legitimately differ between a coordinator and a direct
// engine run. omitempty normalizes nil and empty slices.
type resultData struct {
	Rows       int        `json:"rows"`
	GroupKeys  [][]uint64 `json:"group_keys,omitempty"`
	Aggregates []uint64   `json:"aggregates,omitempty"`
	Ranks      []uint32   `json:"ranks,omitempty"`
	RowOids    []uint32   `json:"row_oids,omitempty"`
}

func canonEngine(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	b, err := json.Marshal(resultData{Rows: res.Rows, GroupKeys: res.GroupKeys,
		Aggregates: res.Aggregates, Ranks: res.Ranks, RowOids: res.RowOids})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func canonServer(t *testing.T, res *server.QueryResult) []byte {
	t.Helper()
	b, err := json.Marshal(resultData{Rows: res.Rows, GroupKeys: res.GroupKeys,
		Aggregates: res.Aggregates, Ranks: res.Ranks, RowOids: res.RowOids})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runOracle executes the request directly through engine.RunContext on
// the full table — the single-node ground truth every merged result
// must match byte for byte.
func runOracle(t *testing.T, tbl *table.Table, req server.QueryRequest, workers int) []byte {
	t.Helper()
	q, err := req.ToEngineQuery()
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{
		Massaging: true,
		Model:     server.BuiltinModel(),
		Rho:       -1,
		MaxPlans:  testMaxPlans,
		Workers:   workers,
		Offset:    req.Offset,
	}
	if req.Limit != nil {
		lim := *req.Limit
		opts.Limit = &lim
	}
	res, err := engine.RunContext(context.Background(), tbl, q, opts)
	if err != nil {
		t.Fatalf("oracle %s: %v", req.ID, err)
	}
	return canonEngine(t, res)
}

// intp makes limit pointers readable in table literals.
func intp(v int) *int { return &v }

// testutilTPCH generates the TPC-H WideTable the workload battery runs
// over.
func testutilTPCH(t *testing.T, rows int) *table.Table {
	t.Helper()
	tbl, err := datagen.TPCH(datagen.TPCHConfig{SF: 1, Rows: rows, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// wireRequest converts an engine query to its wire form (the inverse
// of QueryRequest.ToEngineQuery).
func wireRequest(t *testing.T, tableName string, q engine.Query, workers int) server.QueryRequest {
	t.Helper()
	req := server.QueryRequest{Table: tableName, ID: q.ID, OrderByAgg: q.OrderByAgg, Workers: workers}
	switch q.Kind {
	case planner.OrderBy:
		req.Kind = "orderby"
	case planner.GroupBy:
		req.Kind = "groupby"
	case planner.PartitionBy:
		req.Kind = "partitionby"
	default:
		t.Fatalf("unknown clause kind %v", q.Kind)
	}
	for _, sc := range q.SortCols {
		req.SortCols = append(req.SortCols, server.SortColReq{Name: sc.Name, Desc: sc.Desc})
	}
	for _, f := range q.Filters {
		fr := server.FilterReq{Col: f.Col, Between: f.Between, Lo: f.Lo, Hi: f.Hi, Const: f.Const}
		if !f.Between {
			switch f.Op {
			case byteslice.EQ:
				fr.Op = "eq"
			case byteslice.NEQ:
				fr.Op = "neq"
			case byteslice.LT:
				fr.Op = "lt"
			case byteslice.LE:
				fr.Op = "le"
			case byteslice.GT:
				fr.Op = "gt"
			case byteslice.GE:
				fr.Op = "ge"
			default:
				t.Fatalf("unknown filter op %v", f.Op)
			}
		}
		req.Filters = append(req.Filters, fr)
	}
	if q.Agg != nil {
		a := &server.AggReq{Col: q.Agg.Col}
		switch q.Agg.Kind {
		case engine.Count:
			a.Kind = "count"
		case engine.Sum:
			a.Kind = "sum"
		case engine.Avg:
			a.Kind = "avg"
		}
		req.Agg = a
	}
	if q.Window != nil {
		req.Window = &server.WindowReq{OrderCol: q.Window.OrderCol, Desc: q.Window.Desc}
	}
	return req
}
