// Package simd implements SIMD-within-a-register (SWAR) primitives that
// stand in for the AVX2 intrinsics used by the paper.
//
// The paper's SIMD-sort operates on S-bit vector registers holding S/b
// lanes of b-bit unsigned codes (b is the "bank size"). Go has no vector
// intrinsics, so this package provides branch-free lane-wise compare,
// min/max and blend operations over 64-bit words built from ordinary
// integer arithmetic; package mergesort composes four such words into a
// 256-bit register (S = 256, as in AVX2). The essential property of the
// paper survives: one word-level operation processes 64/b codes at once,
// so narrower banks enjoy proportionally higher data-level parallelism —
// exactly the resource code massaging trades against sorting rounds.
//
// Sorting permutes object identifiers (oids) alongside keys. Oids are
// 32-bit and ride in parallel words; each lane-wise key decision is
// widened to a 32-bit lane mask so the oid words are blended by exactly
// the same comparison outcome, mirroring how AVX2 implementations shuffle
// payload registers with the control computed from keys.
//
// Like the paper (footnote 4), 8-bit banks are not used: b ∈ {16, 32, 64}.
package simd

// Lanes per 64-bit word for each supported bank size.
const (
	Lanes16 = 4 // four 16-bit lanes
	Lanes32 = 2 // two 32-bit lanes
	Lanes64 = 1 // one 64-bit lane
)

const (
	lowHalves = 0x0000FFFF_0000FFFF
	low32     = 0x00000000_FFFFFFFF
)

// Lane-geometry masks for the width-generic compare. All three widths use
// the *same instruction sequence* with different constants, so one
// simulated vector operation costs the same number of scalar operations
// regardless of bank width — mirroring real SIMD hardware, where a vector
// instruction is one µop whether it operates on 16- or 64-bit lanes. This
// uniformity is what lets the measured per-element throughput scale with
// the degree of data-level parallelism 64/b, as the paper's model assumes.
const (
	msb8  = 0x8080_8080_8080_8080
	msb16 = 0x8000_8000_8000_8000
	msb32 = 0x80000000_80000000
	msb64 = 0x80000000_00000000
)

// geGeneric computes the lane-wise x >= y mask for lanes of width l with
// MSB mask m, using lane-local subtraction (Hacker's Delight §2-18) and
// borrow detection. The operation count is independent of the lane width.
func geGeneric(x, y, m uint64, l uint) uint64 {
	d := ((x | m) - (y &^ m)) ^ ((x ^ ^y) & m) // lane-wise x - y
	lt := ((^x & y) | ((^x | y) & d)) & m      // borrow-out (x < y) at lane MSBs
	ltMask := (lt >> (l - 1)) * laneOnes(l)    // widen indicator to full lanes
	return ^ltMask
}

// laneOnes returns the all-ones pattern of one lane of width l (the
// multiplier that spreads a per-lane indicator bit across the lane).
func laneOnes(l uint) uint64 {
	if l == 64 {
		return ^uint64(0)
	}
	return (1 << l) - 1
}

// GE8 returns a lane mask for eight 8-bit lanes: lane i of the result is
// 0xFF when lane i of x is >= lane i of y (unsigned), else 0. The paper
// does not sort with 8-bit banks, but ByteSlice scans compare codes one
// byte-plane at a time — eight codes' bytes per word here.
func GE8(x, y uint64) uint64 { return geGeneric(x, y, msb8, 8) }

// EQ8 returns a lane mask for eight 8-bit lanes: 0xFF where the byte
// lanes are equal (x ≥ y and y ≥ x).
func EQ8(x, y uint64) uint64 { return GE8(x, y) & GE8(y, x) }

// Broadcast8 replicates a byte across all eight lanes.
func Broadcast8(b byte) uint64 { return uint64(b) * 0x0101_0101_0101_0101 }

// GE16 returns a lane mask for four 16-bit lanes: lane i of the result is
// 0xFFFF when lane i of x is >= lane i of y (unsigned), else 0.
func GE16(x, y uint64) uint64 { return geGeneric(x, y, msb16, 16) }

// GE32 returns a lane mask for two 32-bit lanes: lane i of the result is
// 0xFFFFFFFF when lane i of x is >= lane i of y (unsigned), else 0.
func GE32(x, y uint64) uint64 { return geGeneric(x, y, msb32, 32) }

// GE64 returns all-ones when x >= y (unsigned), else zero, without a
// branch. Unlike the narrower banks, this is NOT a single simulated
// vector op: AVX2 has no unsigned 64-bit compare and no 64-bit min/max
// at all, so real implementations compose them from narrower operations
// (compare high halves; on equality, compare low halves) — e.g. the
// Balkesen et al. kernels the paper builds on. We mirror that
// composition, so 64-bit-bank compare-exchanges genuinely cost about
// twice their 32-bit counterparts, exactly as on the paper's hardware.
func GE64(x, y uint64) uint64 {
	geHiXY := geGeneric(x&^uint64(low32), y&^uint64(low32), msb32, 32)
	geHiYX := geGeneric(y&^uint64(low32), x&^uint64(low32), msb32, 32)
	geLo := geGeneric(x<<32, y<<32, msb32, 32)
	gtHi := geHiXY &^ geHiYX
	eqHi := geHiXY & geHiYX
	ge := gtHi | (eqHi & geLo)
	return (ge >> 63) * ^uint64(0) // spread the verdict across the word
}

// MinMax16 returns the lane-wise (min, max) of four 16-bit lanes.
func MinMax16(x, y uint64) (mn, mx uint64) {
	ge := GE16(x, y) // lanes where x >= y
	mn = (y & ge) | (x &^ ge)
	mx = (x & ge) | (y &^ ge)
	return
}

// MinMax32 returns the lane-wise (min, max) of two 32-bit lanes.
func MinMax32(x, y uint64) (mn, mx uint64) {
	ge := GE32(x, y)
	mn = (y & ge) | (x &^ ge)
	mx = (x & ge) | (y &^ ge)
	return
}

// MinMax64 returns (min, max) of two 64-bit values, branch-free.
func MinMax64(x, y uint64) (mn, mx uint64) {
	ge := GE64(x, y)
	mn = (y & ge) | (x &^ ge)
	mx = (x & ge) | (y &^ ge)
	return
}

// Expand16Lo widens the masks of 16-bit lanes 0 and 1 to 32-bit lanes,
// producing the blend mask for the oid word that carries oids 0 and 1.
func Expand16Lo(m uint64) uint64 {
	return (m&1)*0xFFFFFFFF | ((m>>16)&1)*0xFFFFFFFF<<32
}

// Expand16Hi widens the masks of 16-bit lanes 2 and 3 to 32-bit lanes,
// producing the blend mask for the oid word that carries oids 2 and 3.
func Expand16Hi(m uint64) uint64 {
	return ((m>>32)&1)*0xFFFFFFFF | ((m>>48)&1)*0xFFFFFFFF<<32
}

// Blend returns (x & m) | (y &^ m): lane-wise select of x where the mask
// is set and y elsewhere, for any lane geometry encoded in m.
func Blend(m, x, y uint64) uint64 {
	return (x & m) | (y &^ m)
}

// Reverse16 reverses the order of the four 16-bit lanes of x.
func Reverse16(x uint64) uint64 {
	x = x>>32 | x<<32
	return (x>>16)&lowHalves | (x&lowHalves)<<16
}

// Reverse32 swaps the two 32-bit lanes of x.
func Reverse32(x uint64) uint64 {
	return x>>32 | x<<32
}

// Load4x16 packs four consecutive uint16 keys into one word (lane 0 is k[0]).
func Load4x16(k []uint16) uint64 {
	_ = k[3]
	return uint64(k[0]) | uint64(k[1])<<16 | uint64(k[2])<<32 | uint64(k[3])<<48
}

// Store4x16 unpacks the four 16-bit lanes of w into k.
func Store4x16(k []uint16, w uint64) {
	_ = k[3]
	k[0] = uint16(w)
	k[1] = uint16(w >> 16)
	k[2] = uint16(w >> 32)
	k[3] = uint16(w >> 48)
}

// Load2x32 packs two consecutive uint32 values into one word (lane 0 is k[0]).
func Load2x32(k []uint32) uint64 {
	_ = k[1]
	return uint64(k[0]) | uint64(k[1])<<32
}

// Store2x32 unpacks the two 32-bit lanes of w into k.
func Store2x32(k []uint32, w uint64) {
	_ = k[1]
	k[0] = uint32(w)
	k[1] = uint32(w >> 32)
}
