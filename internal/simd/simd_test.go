package simd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lanes16(w uint64) [4]uint16 {
	return [4]uint16{uint16(w), uint16(w >> 16), uint16(w >> 32), uint16(w >> 48)}
}

func lanes32(w uint64) [2]uint32 {
	return [2]uint32{uint32(w), uint32(w >> 32)}
}

func TestGE16MatchesScalar(t *testing.T) {
	f := func(x, y uint64) bool {
		m := GE16(x, y)
		xs, ys, ms := lanes16(x), lanes16(y), lanes16(m)
		for i := range xs {
			want := uint16(0)
			if xs[i] >= ys[i] {
				want = 0xFFFF
			}
			if ms[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestGE16Ties(t *testing.T) {
	// Equal lanes must report >= (mask set), so min/max keep a stable pairing.
	x := Load4x16([]uint16{7, 0, 0xFFFF, 123})
	if m := GE16(x, x); m != ^uint64(0) {
		t.Fatalf("GE16(x,x) = %#x, want all ones", m)
	}
}

func TestMinMax16MatchesScalar(t *testing.T) {
	f := func(x, y uint64) bool {
		mn, mx := MinMax16(x, y)
		xs, ys := lanes16(x), lanes16(y)
		mns, mxs := lanes16(mn), lanes16(mx)
		for i := range xs {
			wantMin, wantMax := xs[i], ys[i]
			if wantMin > wantMax {
				wantMin, wantMax = wantMax, wantMin
			}
			if mns[i] != wantMin || mxs[i] != wantMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestGE32MatchesScalar(t *testing.T) {
	f := func(x, y uint64) bool {
		m := GE32(x, y)
		xs, ys, ms := lanes32(x), lanes32(y), lanes32(m)
		for i := range xs {
			want := uint32(0)
			if xs[i] >= ys[i] {
				want = 0xFFFFFFFF
			}
			if ms[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax32MatchesScalar(t *testing.T) {
	f := func(x, y uint64) bool {
		mn, mx := MinMax32(x, y)
		xs, ys := lanes32(x), lanes32(y)
		mns, mxs := lanes32(mn), lanes32(mx)
		for i := range xs {
			wantMin, wantMax := xs[i], ys[i]
			if wantMin > wantMax {
				wantMin, wantMax = wantMax, wantMin
			}
			if mns[i] != wantMin || mxs[i] != wantMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax64(t *testing.T) {
	f := func(x, y uint64) bool {
		mn, mx := MinMax64(x, y)
		wantMin, wantMax := x, y
		if wantMin > wantMax {
			wantMin, wantMax = wantMax, wantMin
		}
		return mn == wantMin && mx == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestGE64Boundaries(t *testing.T) {
	cases := []struct {
		x, y uint64
		ge   bool
	}{
		{0, 0, true},
		{1, 0, true},
		{0, 1, false},
		{^uint64(0), 0, true},
		{0, ^uint64(0), false},
		{^uint64(0), ^uint64(0), true},
		{1 << 63, (1 << 63) - 1, true},
	}
	for _, c := range cases {
		got := GE64(c.x, c.y) == ^uint64(0)
		if got != c.ge {
			t.Errorf("GE64(%d,%d) = %v, want %v", c.x, c.y, got, c.ge)
		}
	}
}

func TestExpand16(t *testing.T) {
	// Each of the 16 subsets of set lanes must expand consistently.
	for bitsSet := 0; bitsSet < 16; bitsSet++ {
		var m uint64
		for l := 0; l < 4; l++ {
			if bitsSet&(1<<l) != 0 {
				m |= 0xFFFF << (16 * l)
			}
		}
		lo, hi := Expand16Lo(m), Expand16Hi(m)
		los, his := lanes32(lo), lanes32(hi)
		for l := 0; l < 4; l++ {
			want := uint32(0)
			if bitsSet&(1<<l) != 0 {
				want = 0xFFFFFFFF
			}
			var got uint32
			if l < 2 {
				got = los[l]
			} else {
				got = his[l-2]
			}
			if got != want {
				t.Fatalf("expand lanes=%04b lane %d: got %#x want %#x", bitsSet, l, got, want)
			}
		}
	}
}

func TestReverse16(t *testing.T) {
	w := Load4x16([]uint16{1, 2, 3, 4})
	r := lanes16(Reverse16(w))
	if r != [4]uint16{4, 3, 2, 1} {
		t.Fatalf("Reverse16 = %v", r)
	}
	f := func(x uint64) bool { return Reverse16(Reverse16(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverse32(t *testing.T) {
	w := Load2x32([]uint32{10, 20})
	if got := lanes32(Reverse32(w)); got != [2]uint32{20, 10} {
		t.Fatalf("Reverse32 = %v", got)
	}
}

func TestLoadStoreRoundTrip16(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		in := []uint16{uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32())}
		out := make([]uint16, 4)
		Store4x16(out, Load4x16(in))
		for j := range in {
			if in[j] != out[j] {
				t.Fatalf("round trip mismatch at %d: %v vs %v", j, in, out)
			}
		}
	}
}

func TestLoadStoreRoundTrip32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		in := []uint32{rng.Uint32(), rng.Uint32()}
		out := make([]uint32, 2)
		Store2x32(out, Load2x32(in))
		if in[0] != out[0] || in[1] != out[1] {
			t.Fatalf("round trip mismatch: %v vs %v", in, out)
		}
	}
}

func TestBlend(t *testing.T) {
	x, y := uint64(0xAAAAAAAAAAAAAAAA), uint64(0x5555555555555555)
	if Blend(0, x, y) != y {
		t.Error("empty mask must select y")
	}
	if Blend(^uint64(0), x, y) != x {
		t.Error("full mask must select x")
	}
	if got := Blend(low32, x, y); got != (x&low32)|(y&^uint64(low32)) {
		t.Errorf("partial blend = %#x", got)
	}
}
