// Package table implements WideTables: denormalized, pre-joined tables
// of encoded columns (Li & Patel's WideTable, reference [31] of the
// paper). Queries — including former join queries — run as scans, sorts
// and lookups over one wide table, which is what makes multi-column
// sorting such a large share of query time (Figure 1).
package table

import (
	"fmt"
	"sort"

	"repro/internal/byteslice"
	"repro/internal/column"
	"repro/internal/costmodel"
)

// Table is a named collection of equal-length encoded columns, with
// optional ByteSlice representations and statistics profiles built
// lazily per column.
type Table struct {
	Name  string
	N     int
	cols  map[string]*column.Column
	bs    map[string]*byteslice.BS
	stats map[string]costmodel.ColumnStats
}

// New creates an empty table expecting n rows.
func New(name string, n int) *Table {
	return &Table{
		Name:  name,
		N:     n,
		cols:  make(map[string]*column.Column),
		bs:    make(map[string]*byteslice.BS),
		stats: make(map[string]costmodel.ColumnStats),
	}
}

// Add attaches a column; its length must match the table.
func (t *Table) Add(c *column.Column) error {
	if c.Len() != t.N {
		return fmt.Errorf("table %s: column %s has %d rows, want %d", t.Name, c.Name, c.Len(), t.N)
	}
	if _, dup := t.cols[c.Name]; dup {
		return fmt.Errorf("table %s: duplicate column %s", t.Name, c.Name)
	}
	t.cols[c.Name] = c
	return nil
}

// Col returns a column by name.
func (t *Table) Col(name string) (*column.Column, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no column %s", t.Name, name)
	}
	return c, nil
}

// ByteSlice returns (building on first use) the ByteSlice layout of a
// column, the representation the scan operator reads.
func (t *Table) ByteSlice(name string) (*byteslice.BS, error) {
	if bs, ok := t.bs[name]; ok {
		return bs, nil
	}
	c, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	bs := byteslice.FromColumn(c)
	t.bs[name] = bs
	return bs, nil
}

// Stats returns (building on first use) the column's prefix-distinct
// statistics profile — the precomputed table statistics the plan search
// consumes, so query-time planning never pays for stats collection.
// Profiles are computed on a bounded sample of the column.
func (t *Table) Stats(name string) (costmodel.ColumnStats, error) {
	if st, ok := t.stats[name]; ok {
		return st, nil
	}
	c, err := t.Col(name)
	if err != nil {
		return costmodel.ColumnStats{}, err
	}
	codes := c.Codes
	const statsSample = 1 << 16
	if len(codes) > statsSample {
		codes = codes[:statsSample]
	}
	st := costmodel.CollectColumnStats(codes, c.Width)
	t.stats[name] = st
	return st, nil
}

// Columns lists the column names in sorted order.
func (t *Table) Columns() []string {
	names := make([]string, 0, len(t.cols))
	for n := range t.cols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
