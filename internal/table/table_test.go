package table

import (
	"testing"

	"repro/internal/column"
)

func mustAdd(t *testing.T, tbl *Table, c *column.Column) {
	t.Helper()
	if err := tbl.Add(c); err != nil {
		t.Fatal(err)
	}
}

func TestAddAndCol(t *testing.T) {
	tbl := New("t", 4)
	c := column.FromCodes("a", 3, []uint64{1, 2, 3, 4})
	if err := tbl.Add(c); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Col("a")
	if err != nil || got != c {
		t.Fatalf("Col: %v %v", got, err)
	}
	if _, err := tbl.Col("missing"); err == nil {
		t.Error("missing column accepted")
	}
	if err := tbl.Add(c); err == nil {
		t.Error("duplicate column accepted")
	}
	short := column.FromCodes("b", 3, []uint64{1})
	if err := tbl.Add(short); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestByteSliceCached(t *testing.T) {
	tbl := New("t", 3)
	mustAdd(t, tbl, column.FromCodes("a", 9, []uint64{100, 200, 300}))
	bs1, err := tbl.ByteSlice("a")
	if err != nil {
		t.Fatal(err)
	}
	bs2, _ := tbl.ByteSlice("a")
	if bs1 != bs2 {
		t.Error("ByteSlice not cached")
	}
	for i, want := range []uint64{100, 200, 300} {
		if bs1.Lookup(i) != want {
			t.Errorf("row %d: %d", i, bs1.Lookup(i))
		}
	}
}

func TestStatsCachedAndCorrect(t *testing.T) {
	tbl := New("t", 8)
	mustAdd(t, tbl, column.FromCodes("a", 3, []uint64{0, 1, 2, 3, 4, 5, 6, 7}))
	st1, err := tbl.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st1.PrefixDistinct[3] != 8 {
		t.Errorf("full-width distinct = %v, want 8", st1.PrefixDistinct[3])
	}
	st2, _ := tbl.Stats("a")
	if &st1.PrefixDistinct[0] != &st2.PrefixDistinct[0] {
		t.Error("stats not cached")
	}
	if _, err := tbl.Stats("missing"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestColumnsListing(t *testing.T) {
	tbl := New("t", 1)
	mustAdd(t, tbl, column.FromCodes("x", 1, []uint64{0}))
	mustAdd(t, tbl, column.FromCodes("y", 1, []uint64{1}))
	names := tbl.Columns()
	if len(names) != 2 {
		t.Fatalf("Columns = %v", names)
	}
}
