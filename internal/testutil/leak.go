// Package testutil holds shared test-only helpers. It is stdlib-only so
// any package in the module can import it without widening the
// dependency graph.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// CheckNoLeaks snapshots the running goroutines and returns a function
// to be deferred (or passed to t.Cleanup) that fails the test if
// goroutines created during the test are still alive at its end.
//
// Usage:
//
//	defer testutil.CheckNoLeaks(t)()
//
// Detection is by stack identity, not by count: goroutines whose stacks
// already existed at the snapshot are ignored, as are known-benign
// runtime/testing goroutines. Because a cancelled worker may need a few
// scheduler ticks to observe ctx.Done() and exit, the check retries with
// backoff for up to one second before declaring a leak.
func CheckNoLeaks(t *testing.T) func() {
	t.Helper()
	before := goroutineStacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(1 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
	}
}

// leakedSince diffs the current goroutine stacks against a snapshot,
// filtering benign runtime/testing goroutines.
func leakedSince(before map[string]int) []string {
	var leaked []string
	for stack, n := range goroutineStacks() {
		if benign(stack) {
			continue
		}
		if extra := n - before[stack]; extra > 0 {
			leaked = append(leaked, fmt.Sprintf("%d x %s", extra, stack))
		}
	}
	sort.Strings(leaked)
	return leaked
}

// goroutineStacks returns a multiset of normalized goroutine stacks.
func goroutineStacks() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := map[string]int{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		stacks[normalize(g)]++
	}
	return stacks
}

// normalize strips goroutine ids, argument values, and pointer-bearing
// source offsets so identical code paths compare equal across runs.
func normalize(stack string) string {
	lines := strings.Split(stack, "\n")
	var out []string
	for i, line := range lines {
		if i == 0 {
			// Drop "goroutine 123 [chan receive]:" entirely — the id is
			// unique per goroutine and the state flaps between samples.
			continue
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "/") || strings.Contains(line, ".go:") {
			continue // file:line rows carry offsets; function rows suffice
		}
		// Drop the argument list: "pkg.fn(0x1234, ...)" -> "pkg.fn"
		if idx := strings.IndexByte(line, '('); idx >= 0 {
			line = line[:idx]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// benign reports stacks owned by the runtime or the testing harness.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.runTests",
		"testing.Main",
		"runtime.goexit",
	} {
		if strings.HasPrefix(stack, marker) {
			return true
		}
	}
	return strings.Contains(stack, "testing.tRunner") ||
		strings.Contains(stack, "runtime.gc") ||
		strings.Contains(stack, "runtime.MHeap") ||
		strings.Contains(stack, "runtime/pprof") ||
		strings.Contains(stack, "signal.signal_recv") ||
		strings.Contains(stack, "runtime.ensureSigM")
}
