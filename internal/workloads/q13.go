package workloads

import (
	"context"
	"sort"

	"repro/internal/column"
	"repro/internal/engine"
	"repro/internal/massage"
	"repro/internal/mcsort"
	"repro/internal/plan"
	"repro/internal/table"
)

// Q13Result is the outcome of the two-stage TPC-H Q13 pipeline:
// GROUP BY on a single attribute first, then a multi-column sort of the
// tiny derived (custdist, c_count) table — which is why multi-column
// sorting is an insignificant share of Q13's total time (Figure 1's one
// exception, discussed in Section 6.3).
type Q13Result struct {
	CCount   []uint64 // distinct order counts, in output order
	CustDist []uint64 // customers sharing that count
	// StageOne is the engine timing of the GROUP BY c_custkey stage.
	StageOne engine.Timing
	// MCS is the timing of the derived-table multi-column sort.
	MCS mcsort.Timings
	// MCSRows is the derived table's size (the sort's input rows).
	MCSRows int
}

// RunQ13 executes the Q13 pipeline over the TPC-H WideTable:
//
//	SELECT c_count, COUNT(*) AS custdist
//	FROM (SELECT c_custkey, COUNT(o_orderkey) FROM … GROUP BY c_custkey)
//	GROUP BY c_count ORDER BY custdist DESC, c_count DESC
func RunQ13(t *table.Table, massaging bool, opts engine.Options) (*Q13Result, error) {
	return RunQ13Context(context.Background(), t, massaging, opts)
}

// RunQ13Context is RunQ13 with cooperative cancellation threaded
// through both stages.
func RunQ13Context(ctx context.Context, t *table.Table, massaging bool, opts engine.Options) (*Q13Result, error) {
	// Stage 1: GROUP BY c_custkey, counting rows per customer. This is
	// a single-column sort; massaging has nothing to combine.
	stage1 := engine.Query{
		ID:       "tpch.q13.stage1",
		SortCols: []engine.SortCol{{Name: "c_custkey"}},
		Agg:      &engine.Agg{Kind: engine.Count},
	}
	opts1 := opts
	opts1.Massaging = false
	r1, err := engine.RunContext(ctx, t, stage1, opts1)
	if err != nil {
		return nil, err
	}

	// Derived table: one row per distinct c_count value after the inner
	// grouping; custdist = number of customers per count. The counting
	// pass is O(customers), so it polls at the usual stride.
	counts := map[uint64]uint64{}
	for i, c := range r1.Aggregates {
		if i&(1<<14-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		counts[c]++
	}
	// Collect-then-sort so the derived rows (and with them Perm and
	// Groups downstream) do not inherit Go's randomized map order.
	cCount := make([]uint64, 0, len(counts))
	for c := range counts {
		cCount = append(cCount, c)
	}
	sort.Slice(cCount, func(i, j int) bool { return cCount[i] < cCount[j] })
	custDist := make([]uint64, len(cCount))
	var maxCount, maxDist uint64
	for i, c := range cCount {
		d := counts[c]
		custDist[i] = d
		if c > maxCount {
			maxCount = c
		}
		if d > maxDist {
			maxDist = d
		}
	}

	// Stage 2: ORDER BY custdist DESC, c_count DESC — the multi-column
	// sort of the query, on the derived rows.
	inputs := []massage.Input{
		{Codes: custDist, Width: column.WidthFor(int(maxDist) + 1), Desc: true},
		{Codes: cCount, Width: column.WidthFor(int(maxCount) + 1), Desc: true},
	}
	var p plan.Plan
	widths := []int{inputs[0].Width, inputs[1].Width}
	if massaging && widths[0]+widths[1] <= 64 {
		// The derived table is tiny; the stitch-all plan is optimal and
		// a full search would cost more than the sort.
		p = plan.FromWidths([]int{widths[0] + widths[1]})
	} else {
		p = plan.ColumnAtATime(widths)
	}
	mres, err := mcsort.ExecuteContext(ctx, inputs, p, mcsort.Options{})
	if err != nil {
		return nil, err
	}

	res := &Q13Result{
		CCount:   make([]uint64, len(cCount)),
		CustDist: make([]uint64, len(custDist)),
		StageOne: r1.Timing,
		MCS:      mres.Timings,
		MCSRows:  len(cCount),
	}
	for i, oid := range mres.Perm {
		res.CCount[i] = cCount[oid]
		res.CustDist[i] = custDist[oid]
	}
	return res, nil
}
