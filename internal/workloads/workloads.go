// Package workloads defines the evaluation workloads of Section 6: the
// nine multi-column-sorting TPC-H queries (on uniform and zipf-skewed
// data), the four TPC-DS PARTITION BY queries, and the five queries on
// the airline dataset (Table 5). Each query is expressed over the
// generated WideTables in the engine's declarative form; the paper's SQL
// is quoted in the comments.
//
// Queries whose ORDER BY pins the sort column order (e.g. Q1, Q9, Q18)
// run as OrderBy; queries ordered only by an aggregate (Q3, Q10, Q16,
// Q67) leave the GROUP BY column order free, which multiplies the plan
// space by m! exactly as Section 5 describes.
package workloads

import (
	"repro/internal/byteslice"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/table"
)

// Item is one evaluated query bound to its table.
type Item struct {
	ID    string
	Table *table.Table
	Query engine.Query
}

// TPCHQueries returns the nine eligible TPC-H queries over the given
// WideTable (uniform or skewed). Filter constants are codes in the
// generated domains, chosen for paper-like selectivities.
func TPCHQueries(t *table.Table, suffix string) []Item {
	q := func(id string, query engine.Query) Item {
		query.ID = id + suffix
		return Item{ID: query.ID, Table: t, Query: query}
	}
	return []Item{
		// Q1: SELECT … FROM lineitem WHERE l_shipdate <= date GROUP BY
		// l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus.
		q("tpch.q1", engine.Query{
			Kind:     planner.OrderBy,
			SortCols: []engine.SortCol{{Name: "l_returnflag"}, {Name: "l_linestatus"}},
			Filters:  []engine.Filter{{Col: "l_shipdate", Op: byteslice.LE, Const: 2300}},
			Agg:      &engine.Agg{Kind: engine.Sum, Col: "l_extendedprice"},
		}),
		// Q2: … ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
		// WHERE p_size = 15 ….
		q("tpch.q2", engine.Query{
			Kind: planner.OrderBy,
			SortCols: []engine.SortCol{
				{Name: "s_acctbal", Desc: true}, {Name: "supp_nation"},
				{Name: "s_name"}, {Name: "p_partkey"},
			},
			Filters: []engine.Filter{{Col: "p_size", Op: byteslice.EQ, Const: 15}},
		}),
		// Q3: … WHERE c_mktsegment = 'BUILDING' AND dates … GROUP BY
		// l_orderkey, o_orderdate, o_shippriority ORDER BY revenue DESC.
		q("tpch.q3", engine.Query{
			Kind: planner.GroupBy,
			SortCols: []engine.SortCol{
				{Name: "l_orderkey"}, {Name: "o_orderdate"}, {Name: "o_shippriority"},
			},
			Filters: []engine.Filter{
				{Col: "c_mktsegment", Op: byteslice.EQ, Const: 1},
				{Col: "l_shipdate", Op: byteslice.GT, Const: 1200},
			},
			Agg:        &engine.Agg{Kind: engine.Sum, Col: "l_extendedprice"},
			OrderByAgg: true,
		}),
		// Q7: … GROUP BY supp_nation, cust_nation, l_year ORDER BY the
		// same columns, shipdate between two years.
		q("tpch.q7", engine.Query{
			Kind: planner.OrderBy,
			SortCols: []engine.SortCol{
				{Name: "supp_nation"}, {Name: "cust_nation"}, {Name: "l_year"},
			},
			Filters: []engine.Filter{{Col: "l_shipdate", Between: true, Lo: 1096, Hi: 1826}},
			Agg:     &engine.Agg{Kind: engine.Sum, Col: "l_extendedprice"},
		}),
		// Q9: … GROUP BY nation, o_year ORDER BY nation, o_year DESC
		// WHERE p_name LIKE '%green%' (p_type range as the proxy filter).
		q("tpch.q9", engine.Query{
			Kind:     planner.OrderBy,
			SortCols: []engine.SortCol{{Name: "supp_nation"}, {Name: "o_year", Desc: true}},
			Filters:  []engine.Filter{{Col: "p_type", Op: byteslice.LT, Const: 30}},
			Agg:      &engine.Agg{Kind: engine.Sum, Col: "l_extendedprice"},
		}),
		// Q10: … GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name,
		// c_address, c_comment ORDER BY revenue DESC (m = 7, the paper's
		// largest TPC-H clause).
		q("tpch.q10", engine.Query{
			Kind: planner.GroupBy,
			SortCols: []engine.SortCol{
				{Name: "c_custkey"}, {Name: "c_name"}, {Name: "c_acctbal"},
				{Name: "c_phone"}, {Name: "n_name"}, {Name: "c_address"},
				{Name: "c_comment"},
			},
			Filters: []engine.Filter{
				{Col: "o_orderdate", Between: true, Lo: 800, Hi: 892},
				{Col: "l_returnflag", Op: byteslice.EQ, Const: 2},
			},
			Agg:        &engine.Agg{Kind: engine.Sum, Col: "l_extendedprice"},
			OrderByAgg: true,
		}),
		// Q13 (first stage): GROUP BY c_custkey counting orders; the
		// ORDER BY custdist DESC, c_count DESC multi-column sort runs on
		// the tiny derived table (see RunQ13 and Figure 1's discussion).
		q("tpch.q13", engine.Query{
			Kind:       planner.GroupBy,
			SortCols:   []engine.SortCol{{Name: "c_custkey"}},
			Agg:        &engine.Agg{Kind: engine.Count},
			OrderByAgg: true,
		}),
		// Q16: … GROUP BY p_brand, p_type, p_size ORDER BY supplier_cnt
		// DESC, … WHERE p_size <> 15 (the Figure 7 query, m = 3).
		q("tpch.q16", engine.Query{
			Kind: planner.GroupBy,
			SortCols: []engine.SortCol{
				{Name: "p_brand"}, {Name: "p_type"}, {Name: "p_size"},
			},
			Filters:    []engine.Filter{{Col: "p_size", Op: byteslice.NEQ, Const: 15}},
			Agg:        &engine.Agg{Kind: engine.Count},
			OrderByAgg: true,
		}),
		// Q18: … GROUP BY c_name, c_custkey, o_orderkey, o_orderdate,
		// o_totalprice ORDER BY o_totalprice DESC, o_orderdate — the
		// ORDER BY pins two leading columns, the rest are grouping keys.
		q("tpch.q18", engine.Query{
			Kind: planner.OrderBy,
			SortCols: []engine.SortCol{
				{Name: "o_totalprice", Desc: true}, {Name: "o_orderdate"},
				{Name: "c_name"}, {Name: "c_custkey"}, {Name: "l_orderkey"},
			},
			Filters: []engine.Filter{{Col: "l_quantity", Op: byteslice.GE, Const: 30}},
			Agg:     &engine.Agg{Kind: engine.Sum, Col: "l_quantity"},
		}),
	}
}

// TPCDSQueries returns the four evaluated TPC-DS queries (all carrying
// PARTITION BY windows; Q67's rollup grouping is the widest clause).
func TPCDSQueries(t *table.Table) []Item {
	q := func(id string, query engine.Query) Item {
		query.ID = id
		return Item{ID: id, Table: t, Query: query}
	}
	return []Item{
		// Q36: RANK() OVER (PARTITION BY i_category, i_class ORDER BY
		// gross margin) for one year.
		q("tpcds.q36", engine.Query{
			Kind:     planner.PartitionBy,
			SortCols: []engine.SortCol{{Name: "i_category"}, {Name: "i_class"}},
			Window:   &engine.Window{OrderCol: "ss_net_profit", Desc: true},
			Filters:  []engine.Filter{{Col: "d_year", Op: byteslice.EQ, Const: 3}},
		}),
		// Q53: RANK over manufacturer/quarter sales.
		q("tpcds.q53", engine.Query{
			Kind:     planner.PartitionBy,
			SortCols: []engine.SortCol{{Name: "i_manufact_id"}, {Name: "d_qoy"}},
			Window:   &engine.Window{OrderCol: "ss_sales_price"},
		}),
		// Q67: GROUP BY rollup over i_category, i_class, i_brand,
		// d_year, d_qoy, d_moy, s_store_sk, ranked by sum sales — the
		// seven-column grouping is the multi-column sort.
		q("tpcds.q67", engine.Query{
			Kind: planner.GroupBy,
			SortCols: []engine.SortCol{
				{Name: "i_category"}, {Name: "i_class"}, {Name: "i_brand"},
				{Name: "d_year"}, {Name: "d_qoy"}, {Name: "d_moy"},
				{Name: "s_store_sk"},
			},
			Agg:        &engine.Agg{Kind: engine.Sum, Col: "ss_sales_price"},
			OrderByAgg: true,
		}),
		// Q89: RANK over category/brand/company monthly sales deviation.
		q("tpcds.q89", engine.Query{
			Kind: planner.PartitionBy,
			SortCols: []engine.SortCol{
				{Name: "i_category"}, {Name: "i_brand"}, {Name: "s_company_id"},
			},
			Window:  &engine.Window{OrderCol: "ss_sales_price"},
			Filters: []engine.Filter{{Col: "d_year", Op: byteslice.EQ, Const: 2}},
		}),
	}
}

// AirlineQueries returns the five real-workload queries of Table 5.
func AirlineQueries(ticket, market *table.Table) []Item {
	return []Item{
		// A1: SELECT … FROM Ticket WHERE OriginStateName = 'Texas'
		// ORDER BY DollarCred, FarePerMile.
		{ID: "real.q1", Table: ticket, Query: engine.Query{
			ID:       "real.q1",
			Kind:     planner.OrderBy,
			SortCols: []engine.SortCol{{Name: "DollarCred"}, {Name: "FarePerMile"}},
			Filters:  []engine.Filter{{Col: "OriginStateName", Op: byteslice.EQ, Const: 43}},
		}},
		// A2: RANK() OVER (PARTITION BY OriginAirportID, DistanceGroup
		// ORDER BY Passengers) WHERE ItinGeoType = 1.
		{ID: "real.q2", Table: ticket, Query: engine.Query{
			ID:       "real.q2",
			Kind:     planner.PartitionBy,
			SortCols: []engine.SortCol{{Name: "OriginAirportID"}, {Name: "DistanceGroup"}},
			Window:   &engine.Window{OrderCol: "Passengers"},
			Filters:  []engine.Filter{{Col: "ItinGeoType", Op: byteslice.EQ, Const: 1}},
		}},
		// A3: GROUP BY RPCarrier, OriginState, RoundTrip, DistanceGroup
		// with AVG(Passengers).
		{ID: "real.q3", Table: ticket, Query: engine.Query{
			ID:   "real.q3",
			Kind: planner.GroupBy,
			SortCols: []engine.SortCol{
				{Name: "RPCarrier"}, {Name: "OriginStateName"},
				{Name: "RoundTrip"}, {Name: "DistanceGroup"},
			},
			Agg: &engine.Agg{Kind: engine.Avg, Col: "Passengers"},
		}},
		// A4: GROUP BY OriginAirportID, DestAirportID with AVG(MktFare)
		// WHERE OpCarrier = 'B6'.
		{ID: "real.q4", Table: market, Query: engine.Query{
			ID:       "real.q4",
			Kind:     planner.GroupBy,
			SortCols: []engine.SortCol{{Name: "OriginAirportID"}, {Name: "DestAirportID"}},
			Filters:  []engine.Filter{{Col: "OpCarrier", Op: byteslice.EQ, Const: 5}},
			Agg:      &engine.Agg{Kind: engine.Avg, Col: "MktFare"},
		}},
		// A5: RANK() OVER (PARTITION BY OpCarrier, ItinGeoType ORDER BY
		// MktFare) WHERE MktDistanceGroup = 1.
		{ID: "real.q5", Table: market, Query: engine.Query{
			ID:       "real.q5",
			Kind:     planner.PartitionBy,
			SortCols: []engine.SortCol{{Name: "OpCarrier"}, {Name: "ItinGeoType"}},
			Window:   &engine.Window{OrderCol: "MktFare"},
			Filters:  []engine.Filter{{Col: "MktDistanceGroup", Op: byteslice.EQ, Const: 1}},
		}},
	}
}
