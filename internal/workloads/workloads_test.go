package workloads

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/engine"
)

func testModel() *costmodel.Model {
	return &costmodel.Model{
		L2:     1 << 21,
		LLC:    1 << 23,
		Fanout: 8,
		C: costmodel.Constants{
			CCache:    2,
			CMem:      60,
			CMassage:  1,
			CScan:     1.5,
			SmallCall: 60,
			SmallElem: 15,
			SmallQuad: 1,
			Bank: map[int]costmodel.BankConstants{
				16: {COverhead: 400, CLinear: 220, COutOfCache: 40},
				32: {COverhead: 400, CLinear: 300, COutOfCache: 55},
				64: {COverhead: 400, CLinear: 420, COutOfCache: 80},
			},
		},
	}
}

func TestAllQueriesExecuteBothModes(t *testing.T) {
	const rows = 8000
	tpch, err := datagen.TPCH(datagen.TPCHConfig{SF: 1, Rows: rows, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tpchSkew, err := datagen.TPCH(datagen.TPCHConfig{SF: 1, Rows: rows, Skew: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tpcds, err := datagen.TPCDS(datagen.TPCDSConfig{SF: 1, Rows: rows, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := datagen.AirlineTicket(datagen.AirlineConfig{Rows: rows, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	market, err := datagen.AirlineMarket(datagen.AirlineConfig{Rows: rows, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	var items []Item
	items = append(items, TPCHQueries(tpch, "")...)
	items = append(items, TPCHQueries(tpchSkew, ".skew")...)
	items = append(items, TPCDSQueries(tpcds)...)
	items = append(items, AirlineQueries(ticket, market)...)

	if len(items) != 9+9+4+5 {
		t.Fatalf("expected 27 queries, have %d", len(items))
	}

	model := testModel()
	for _, item := range items {
		for _, massaging := range []bool{false, true} {
			res, err := engine.Run(item.Table, item.Query,
				engine.Options{Massaging: massaging, Model: model, Rho: 0.2})
			if err != nil {
				t.Fatalf("%s (massaging=%v): %v", item.ID, massaging, err)
			}
			if res.Rows == 0 {
				t.Errorf("%s: filter selected zero rows — bad constant for the generated domain", item.ID)
			}
			if item.Query.Window == nil && len(res.GroupKeys) == 0 && res.Rows > 0 {
				t.Errorf("%s: no groups", item.ID)
			}
			if item.Query.Window != nil && len(res.Ranks) != res.Rows {
				t.Errorf("%s: ranks %d != rows %d", item.ID, len(res.Ranks), res.Rows)
			}
		}
	}
}

// TestMassagingPreservesResults runs every query in both modes and
// compares the group aggregates (the fundamental correctness property:
// code massaging must not change query answers).
func TestMassagingPreservesResults(t *testing.T) {
	const rows = 6000
	tpch, err := datagen.TPCH(datagen.TPCHConfig{SF: 1, Rows: rows, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	model := testModel()
	for _, item := range TPCHQueries(tpch, "") {
		off, err := engine.Run(item.Table, item.Query, engine.Options{Massaging: false})
		if err != nil {
			t.Fatalf("%s off: %v", item.ID, err)
		}
		on, err := engine.Run(item.Table, item.Query,
			engine.Options{Massaging: true, Model: model, Rho: 0.2})
		if err != nil {
			t.Fatalf("%s on: %v", item.ID, err)
		}
		if len(off.GroupKeys) != len(on.GroupKeys) {
			t.Errorf("%s: group count differs %d vs %d", item.ID, len(off.GroupKeys), len(on.GroupKeys))
			continue
		}
		// Aggregate multiset must match; compare as sorted sums.
		var a, b uint64
		for g := range off.Aggregates {
			a += off.Aggregates[g]
			b += on.Aggregates[g]
		}
		if a != b {
			t.Errorf("%s: aggregate checksum differs", item.ID)
		}
	}
}

func TestRunQ13(t *testing.T) {
	tpch, err := datagen.TPCH(datagen.TPCHConfig{SF: 1, Rows: 10000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, massaging := range []bool{false, true} {
		res, err := RunQ13(tpch, massaging, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.CCount) == 0 {
			t.Fatal("no derived rows")
		}
		// Output must be ordered by custdist DESC, c_count DESC.
		for i := 1; i < len(res.CustDist); i++ {
			if res.CustDist[i-1] < res.CustDist[i] {
				t.Fatalf("custdist not descending at %d", i)
			}
			if res.CustDist[i-1] == res.CustDist[i] && res.CCount[i-1] < res.CCount[i] {
				t.Fatalf("c_count tie order wrong at %d", i)
			}
		}
		// custdist must sum to the number of distinct customers.
		var sum uint64
		for _, d := range res.CustDist {
			sum += d
		}
		if sum == 0 {
			t.Fatal("empty custdist")
		}
		// The derived MCS input must be tiny relative to the table —
		// the Figure 1 observation that Q13's MCS share is negligible.
		if res.MCSRows > 200 {
			t.Errorf("derived table unexpectedly large: %d", res.MCSRows)
		}
	}
}
