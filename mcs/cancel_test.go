package mcs

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pipeerr"
	"repro/internal/testutil"
)

// fourColumns builds the acceptance-criteria shape: n rows, four sort
// columns of mixed widths.
func fourColumns(n int, seed int64) []Column {
	rng := rand.New(rand.NewSource(seed))
	widths := []int{8, 12, 10, 14}
	cols := make([]Column, len(widths))
	for c, w := range widths {
		codes := make([]uint64, n)
		for i := range codes {
			codes[i] = uint64(rng.Intn(1 << w))
		}
		cols[c] = Column{Codes: codes, Width: w}
	}
	return cols
}

// acceptancePlan keeps two substantial rounds in play so the sort has a
// permute pass and a long second round to cancel out of.
var acceptancePlan = Plan{Rounds: []Round{{Width: 22, Bank: 32}, {Width: 22, Bank: 32}}}

// TestSortContextPromptCancel is the acceptance criterion: cancelling a
// 1M-row, 4-column query mid-sort returns context.Canceled well under
// the remaining sort time, with zero leaked goroutines.
func TestSortContextPromptCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row acceptance test skipped in -short mode")
	}
	defer testutil.CheckNoLeaks(t)()
	const n = 1_000_000
	cols := fourColumns(n, 61)
	opts := &Options{Plan: &acceptancePlan, Workers: 4}

	// Baseline: how long the full sort takes on this machine.
	start := time.Now()
	if _, err := SortContext(context.Background(), cols, opts); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// Cancel a fifth of the way in; the sort must unwind in far less
	// than the ~4/5 of the work it would otherwise still do.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	timer := time.AfterFunc(full/5, func() {
		cancelledAt = time.Now()
		cancel()
	})
	defer timer.Stop()
	res, err := SortContext(ctx, cols, opts)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled sort must not return a result")
	}
	if cancelledAt.IsZero() {
		t.Fatal("sort finished before the cancel timer; baseline too fast for this test")
	}
	// "Well under remaining sort time": allow half the full duration
	// (the remaining work was ~4/5 of it), plus scheduler slack.
	if limit := full/2 + 100*time.Millisecond; returned.Sub(cancelledAt) > limit {
		t.Errorf("took %v to honor cancellation; limit %v (full sort %v)",
			returned.Sub(cancelledAt), limit, full)
	}
}

// TestSortContextDeadline pins DeadlineExceeded propagation.
func TestSortContextDeadline(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := SortContext(ctx, fourColumns(10_000, 67), &Options{Plan: &acceptancePlan, Workers: 4}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSortWorkerPanicIsPipelineError is the second acceptance criterion:
// an injected worker panic surfaces as a typed *mcs.PipelineError naming
// the stage — never a process crash.
func TestSortWorkerPanicIsPipelineError(t *testing.T) {
	defer faultinject.Reset()
	defer testutil.CheckNoLeaks(t)()
	cols := fourColumns(200_000, 71)
	restore := faultinject.Set(faultinject.Permute, func() { panic("injected fault") })
	defer restore()
	_, err := SortContext(context.Background(), cols, &Options{Plan: &acceptancePlan, Workers: 4})
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *mcs.PipelineError", err, err)
	}
	if pe.Stage != pipeerr.StagePermute {
		t.Errorf("stage = %q, want %q", pe.Stage, pipeerr.StagePermute)
	}
}

// TestSortBudget pins both halves of the MaxBytes contract at the public
// surface: an impossible budget refuses with ErrBudgetExceeded; a budget
// that only fits a reduced worker count still returns the exact same
// permutation as the unbudgeted sort.
func TestSortBudget(t *testing.T) {
	const n = 50_000
	cols := fourColumns(n, 73)
	opts := &Options{Plan: &acceptancePlan, Workers: 8}

	if _, err := Sort(cols, &Options{Plan: &acceptancePlan, Workers: 8, MaxBytes: 1024}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("tiny budget: err = %v, want ErrBudgetExceeded", err)
	}

	full, err := Sort(cols, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential footprint plus one worker's scratch: forces degradation
	// below 8 workers without refusing.
	budget := estimateSortBytes(n, len(acceptancePlan.Rounds), 1) + 64<<10
	degraded, err := Sort(cols, &Options{Plan: &acceptancePlan, Workers: 8, MaxBytes: budget})
	if err != nil {
		t.Fatalf("degraded sort failed: %v", err)
	}
	if len(degraded.Perm) != len(full.Perm) {
		t.Fatal("degraded sort changed the result size")
	}
	for i := range full.Perm {
		if degraded.Perm[i] != full.Perm[i] {
			t.Fatalf("degraded sort diverges at %d", i)
		}
	}
}

// TestSortContextHappyPath pins that the context variant is the same
// sort: identical output to the context-free entry point.
func TestSortContextHappyPath(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	cols := fourColumns(30_000, 79)
	a, err := Sort(cols, &Options{Plan: &acceptancePlan, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SortContext(context.Background(), cols, &Options{Plan: &acceptancePlan, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatalf("SortContext diverges from Sort at %d", i)
		}
	}
}
