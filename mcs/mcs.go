// Package mcs is the public API of the multi-column sorting library: a
// Go reproduction of "Fast Multi-Column Sorting in Main-Memory
// Column-Stores" (Xu, Feng, Lo — SIGMOD 2016).
//
// The entry point is Sort: give it the encoded sort columns (codes,
// widths, directions) and it plans and executes a multi-column sort,
// returning the sorted permutation of object identifiers and the tied
// groups. With massaging enabled (the default), a cost-based search
// (ROGA) first chooses how to repartition the columns' bits into
// sorting rounds — stitching columns together or borrowing bits between
// them — to minimize the total SIMD sorting time.
//
//	cols := []mcs.Column{
//	    {Codes: dates, Width: 12},
//	    {Codes: prices, Width: 17, Desc: true},
//	}
//	res, err := mcs.Sort(cols, nil)
//	// res.Perm is the sorted oid order; res.Plan what was executed.
//
// The heavy lifting lives in the internal packages; this package wires
// them together and re-exports the types a caller needs to name.
package mcs

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/massage"
	"repro/internal/mcsort"
	"repro/internal/pipeerr"
	"repro/internal/plan"
	"repro/internal/planner"
)

// Column is one sort key column: fixed-width codes (each < 2^Width, as
// produced by the colstore encoders) and its sort direction.
type Column struct {
	Codes []uint64
	Width int
	Desc  bool
}

// Plan is a code-massage plan: how the concatenated key bits are
// partitioned into sorting rounds, in the paper's {R₁: w/[b], …}
// notation.
type Plan = plan.Plan

// Round is one sorting round of a Plan.
type Round = plan.Round

// Clause tells the planner whether the column order is fixed (OrderBy)
// or free to permute (GroupBy, PartitionBy) — free order multiplies the
// plan space by m!.
type Clause = planner.ClauseKind

// Clause kinds.
const (
	OrderBy     = planner.OrderBy
	GroupBy     = planner.GroupBy
	PartitionBy = planner.PartitionBy
)

// Model is the calibrated architecture-aware cost model.
type Model = costmodel.Model

// PipelineError is the typed failure of one pipeline worker: the stage
// it ran ("massage", "sort", "merge", "permute", "gather", "aggregate"),
// the sorting round and worker index (-1 when not applicable), and the
// underlying cause — including recovered worker panics, which are
// contained into this type instead of crashing the process. Match with
// errors.As:
//
//	var pe *mcs.PipelineError
//	if errors.As(err, &pe) { log.Printf("stage %s failed", pe.Stage) }
type PipelineError = pipeerr.PipelineError

// ErrBudgetExceeded reports that a sort was refused because its
// estimated memory footprint exceeds Options.MaxBytes even after
// degrading to sequential execution. Match with errors.Is.
var ErrBudgetExceeded = pipeerr.ErrBudgetExceeded

// Timings is the per-phase wall-time breakdown of a sort.
type Timings = mcsort.Timings

// Options tunes Sort. The zero value (or nil) means: massaging on,
// ORDER BY semantics, ρ = 0.1%, process-wide calibrated model,
// single-threaded.
type Options struct {
	// Massaging disables the plan search when false: the columns are
	// sorted column-at-a-time (the baseline P₀ of the paper).
	Massaging *bool
	// Clause selects the planner's freedom; defaults to OrderBy.
	Clause Clause
	// Rho is the plan-search time threshold ρ (default 0.001 = 0.1%).
	Rho float64
	// Model overrides the cost model (default: calibrate once per
	// process, or load the profile named by MCS_CALIBRATION).
	Model *Model
	// Plan skips the search entirely and executes the given plan.
	Plan *Plan
	// Workers parallelizes the whole sort pipeline when > 1: massaging,
	// the range-partitioned first-round sort, the group-distributed
	// later rounds, and the key-permute passes between rounds. The
	// result is byte-identical for any value.
	Workers int
	// MaxBytes bounds the estimated transient memory footprint of the
	// sort. When the estimate at the requested worker count exceeds it,
	// workers are halved until it fits; when even sequential execution
	// does not fit, Sort refuses with ErrBudgetExceeded. <= 0 means
	// unlimited.
	MaxBytes int64
}

// Result of a multi-column sort.
type Result struct {
	// Perm is the sorted order: Perm[i] is the oid (input row index) of
	// the i-th tuple under the sort.
	Perm []uint32
	// Groups bound the runs of tuples equal on every sort column:
	// group g is Perm[Groups[g]:Groups[g+1]].
	Groups []int32
	// Plan is the executed massage plan; ColOrder the column
	// permutation chosen for free-order clauses (identity for OrderBy).
	Plan     Plan
	ColOrder []int
	// Timings breaks down where the time went.
	Timings Timings
	// Estimated is the model's cost estimate of the chosen plan in
	// nanoseconds (0 when massaging was off or a plan was supplied).
	Estimated float64
}

// Sort sorts rows by the given columns (lexicographically, honoring each
// column's direction) and returns the permutation and tie groups.
func Sort(cols []Column, opts *Options) (*Result, error) {
	return SortContext(context.Background(), cols, opts)
}

// SortContext is Sort with cooperative cancellation, fault containment,
// and budget degradation: a cancelled or deadline-expired context makes
// the sort return ctx.Err() within one chunk of work with no goroutine
// leaks; a panicking worker surfaces as a *PipelineError naming the
// stage instead of crashing the process; Options.MaxBytes degrades the
// worker count or refuses with ErrBudgetExceeded. On any error the
// returned Result is nil and the input columns are untouched.
func SortContext(ctx context.Context, cols []Column, opts *Options) (*Result, error) {
	if len(cols) == 0 {
		return nil, errors.New("mcs: no sort columns")
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	n := len(cols[0].Codes)
	inputs := make([]massage.Input, len(cols))
	widths := make([]int, len(cols))
	for i, c := range cols {
		if c.Width < 1 || c.Width > 64 {
			return nil, fmt.Errorf("mcs: column %d width %d out of range [1,64]", i, c.Width)
		}
		if len(c.Codes) != n {
			return nil, fmt.Errorf("mcs: column %d has %d rows, want %d", i, len(c.Codes), n)
		}
		inputs[i] = massage.Input{Codes: c.Codes, Width: c.Width, Desc: c.Desc}
		widths[i] = c.Width
	}
	if err := ctx.Err(); err != nil {
		return nil, pipeerr.NoteCancel(err)
	}

	choice := planner.Choice{ColOrder: identity(len(cols)), Plan: plan.ColumnAtATime(widths)}
	switch {
	case o.Plan != nil:
		choice.Plan = *o.Plan
	case o.Massaging == nil || *o.Massaging:
		model := o.Model
		if model == nil {
			var err error
			model, err = costmodel.Default()
			if err != nil {
				return nil, err
			}
		}
		cols2 := make([][]uint64, len(inputs))
		for i := range inputs {
			cols2[i] = sample(inputs[i].Codes)
		}
		st := costmodel.CollectStats(cols2, widths)
		st.N = n
		var err error
		choice, err = planner.ROGAContext(ctx, &planner.Search{
			Model: model, Stats: st, Kind: o.Clause, Rho: o.Rho,
		})
		if err != nil {
			return nil, pipeerr.NoteCancel(err)
		}
	}

	// Budget: with the round count known, degrade workers until the
	// estimated sort footprint fits MaxBytes, refusing when even
	// sequential execution does not.
	workers, err := pipeerr.DegradeWorkers(o.Workers, o.MaxBytes, func(w int) int64 {
		return estimateSortBytes(n, len(choice.Plan.Rounds), w)
	})
	if err != nil {
		return nil, err
	}

	ordered := make([]massage.Input, len(inputs))
	for i, c := range choice.ColOrder {
		ordered[i] = inputs[c]
	}
	mres, err := mcsort.ExecuteContext(ctx, ordered, choice.Plan, mcsort.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &Result{
		Perm:      mres.Perm,
		Groups:    mres.Groups,
		Plan:      choice.Plan,
		ColOrder:  choice.ColOrder,
		Timings:   mres.Timings,
		Estimated: choice.Est,
	}, nil
}

// estimateSortBytes models the peak transient allocation of the sort
// pipeline (round keys, permutation, lookup scratch, pack buffers;
// parallel execution adds partition scratch and per-worker overhead).
// The caller-owned input codes are not counted — they exist either way.
func estimateSortBytes(rows, nRounds, workers int) int64 {
	r := int64(rows)
	total := r * int64(8*nRounds+8+4+4+24)
	if workers > 1 {
		total += r*16 + int64(workers)*64<<10
	}
	return total
}

// ColumnAtATime returns the baseline plan P₀ for the column widths.
func ColumnAtATime(widths []int) Plan { return plan.ColumnAtATime(widths) }

// Calibrate measures this machine and returns a cost model; expensive
// (a few seconds), so reuse the result or persist it with Model.Save.
func Calibrate() (*Model, error) { return costmodel.Calibrate(costmodel.CalOptions{}) }

// LoadModel reads a model saved with Model.Save.
func LoadModel(path string) (*Model, error) { return costmodel.Load(path) }

// statsSampleLimit bounds the rows inspected when collecting planning
// statistics; beyond this, prefix-distinct profiles change little.
const statsSampleLimit = 1 << 16

func sample(codes []uint64) []uint64 {
	if len(codes) > statsSampleLimit {
		return codes[:statsSampleLimit]
	}
	return codes
}

func identity(m int) []int {
	p := make([]int, m)
	for i := range p {
		p[i] = i
	}
	return p
}

// Off and On are convenience pointers for Options.Massaging.
var (
	offValue = false
	onValue  = true
	// Off disables code massaging (column-at-a-time baseline).
	Off = &offValue
	// On enables code massaging explicitly (it is also the default).
	On = &onValue
)
