package mcs

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/costmodel"
)

func testModel() *Model {
	return &costmodel.Model{
		L2:     1 << 21,
		LLC:    1 << 23,
		Fanout: 8,
		C: costmodel.Constants{
			CCache:    2,
			CMem:      60,
			CMassage:  1,
			CScan:     1.5,
			SmallCall: 60,
			SmallElem: 15,
			SmallQuad: 1,
			Bank: map[int]costmodel.BankConstants{
				16: {COverhead: 400, CLinear: 220, COutOfCache: 40},
				32: {COverhead: 400, CLinear: 300, COutOfCache: 55},
				64: {COverhead: 400, CLinear: 420, COutOfCache: 80},
			},
		},
	}
}

func twoColumns(n int, seed int64) ([]Column, []uint64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i] = uint64(rng.Intn(1 << 10))
		b[i] = uint64(rng.Intn(1 << 13))
	}
	return []Column{
		{Codes: a, Width: 10},
		{Codes: b, Width: 17},
	}, a, b
}

func TestSortMatchesReference(t *testing.T) {
	const n = 5000
	cols, a, b := twoColumns(n, 1)
	res, err := Sort(cols, &Options{Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	// Reference order.
	ref := make([]uint32, n)
	for i := range ref {
		ref[i] = uint32(i)
	}
	sort.SliceStable(ref, func(x, y int) bool {
		if a[ref[x]] != a[ref[y]] {
			return a[ref[x]] < a[ref[y]]
		}
		return b[ref[x]] < b[ref[y]]
	})
	for i := range res.Perm {
		if a[res.Perm[i]] != a[ref[i]] || b[res.Perm[i]] != b[ref[i]] {
			t.Fatalf("order differs from reference at %d", i)
		}
	}
}

func TestSortMassagingOffUsesP0(t *testing.T) {
	cols, _, _ := twoColumns(1000, 2)
	res, err := Sort(cols, &Options{Massaging: Off})
	if err != nil {
		t.Fatal(err)
	}
	want := ColumnAtATime([]int{10, 17})
	if !res.Plan.Equal(want) {
		t.Errorf("plan %v, want %v", res.Plan, want)
	}
	if res.Estimated != 0 {
		t.Errorf("estimate should be 0 without search, got %v", res.Estimated)
	}
}

func TestSortWithExplicitPlan(t *testing.T) {
	cols, _, _ := twoColumns(1000, 3)
	p := Plan{Rounds: []Round{{Width: 27, Bank: 32}}}
	res, err := Sort(cols, &Options{Plan: &p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Equal(p) {
		t.Errorf("plan %v, want %v", res.Plan, p)
	}
}

func TestSortDescColumns(t *testing.T) {
	n := 2000
	cols, a, b := twoColumns(n, 4)
	cols[1].Desc = true
	res, err := Sort(cols, &Options{Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		pa, pb := res.Perm[i-1], res.Perm[i]
		if a[pa] > a[pb] {
			t.Fatalf("column a out of order at %d", i)
		}
		if a[pa] == a[pb] && b[pa] < b[pb] {
			t.Fatalf("column b not descending within tie at %d", i)
		}
	}
}

func TestSortValidation(t *testing.T) {
	if _, err := Sort(nil, nil); err == nil {
		t.Error("no columns accepted")
	}
	bad := []Column{{Codes: []uint64{1}, Width: 0}}
	if _, err := Sort(bad, nil); err == nil {
		t.Error("zero width accepted")
	}
	mismatch := []Column{
		{Codes: []uint64{1, 2}, Width: 4},
		{Codes: []uint64{1}, Width: 4},
	}
	if _, err := Sort(mismatch, nil); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestGroupBoundaries(t *testing.T) {
	cols := []Column{{Codes: []uint64{3, 1, 3, 1, 2}, Width: 2}}
	res, err := Sort(cols, &Options{Massaging: Off})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 { // values 1, 2, 3 -> 3 groups + sentinel
		t.Fatalf("groups = %v", res.Groups)
	}
	if res.Groups[0] != 0 || res.Groups[3] != 5 {
		t.Fatalf("bad boundaries: %v", res.Groups)
	}
}

func TestFreeOrderClause(t *testing.T) {
	cols, _, _ := twoColumns(3000, 5)
	res, err := Sort(cols, &Options{Clause: GroupBy, Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ColOrder) != 2 {
		t.Fatalf("ColOrder = %v", res.ColOrder)
	}
	// Whatever order was chosen, the groups must partition all rows.
	if res.Groups[len(res.Groups)-1] != 3000 {
		t.Error("groups do not span all rows")
	}
}
