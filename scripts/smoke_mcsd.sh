#!/usr/bin/env bash
# End-to-end smoke test for the mcsd query daemon (docs/serving.md):
# build, start against a small TPC-H table, run the same query twice,
# assert the second run hit the plan cache (visible on /metrics),
# then SIGTERM and require a clean drain (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${MCSD_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/mcsd"
LOG="$(mktemp)"

cleanup() {
  if [[ -n "${MCSD_PID:-}" ]] && kill -0 "$MCSD_PID" 2>/dev/null; then
    kill -KILL "$MCSD_PID" 2>/dev/null || true
  fi
  rm -f "$BIN" "$LOG"
}
trap cleanup EXIT

fail() {
  echo "smoke_mcsd: FAIL: $*" >&2
  echo "--- mcsd log ---" >&2
  cat "$LOG" >&2
  exit 1
}

echo "smoke_mcsd: building mcsd"
go build -o "$BIN" ./cmd/mcsd

echo "smoke_mcsd: starting mcsd on $ADDR"
"$BIN" -addr "$ADDR" -tables tpch -tablerows 8000 -model builtin \
  -max-concurrent 2 -workers 2 -drain-timeout 20s >"$LOG" 2>&1 &
MCSD_PID=$!

# Wait for readiness.
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$MCSD_PID" 2>/dev/null || fail "mcsd exited during startup"
  sleep 0.2
done
curl -fsS "$BASE/healthz" | grep -q '"ok"' || fail "healthz not ok"

QUERY='{"table":"tpch_wide","kind":"groupby","sort_cols":[{"name":"p_brand"},{"name":"p_type"},{"name":"p_size"}],"filters":[{"col":"p_size","op":"neq","const":15}],"agg":{"kind":"count"},"order_by_agg":true,"workers":2}'

run_query() {
  local job state
  job=$(curl -fsS "$BASE/query" -d "$QUERY" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
  [[ -n "$job" ]] || fail "submit returned no job_id"
  for _ in $(seq 1 200); do
    state=$(curl -fsS "$BASE/jobs/$job" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$state" in
      done) curl -fsS "$BASE/jobs/$job/result"; return 0 ;;
      failed) fail "job $job failed: $(curl -fsS "$BASE/jobs/$job")" ;;
    esac
    sleep 0.1
  done
  fail "job $job did not finish"
}

echo "smoke_mcsd: first query (plan-cache miss)"
run_query | grep -q '"plan_cache_hit":false' || fail "first query reported a cache hit"

echo "smoke_mcsd: second query (plan-cache hit)"
run_query | grep -q '"plan_cache_hit":true' || fail "second query missed the plan cache"

echo "smoke_mcsd: checking /metrics for plancache hits"
METRICS=$(curl -fsS "$BASE/metrics")
HITS=$(printf '%s' "$METRICS" | tr -d ' \n' \
  | sed -n 's/.*"name":"server\.plancache_hits","value":\([0-9]*\).*/\1/p')
[[ -n "$HITS" && "$HITS" -ge 1 ]] || fail "server.plancache_hits=$HITS, want >= 1"

echo "smoke_mcsd: draining with SIGTERM"
kill -TERM "$MCSD_PID"
if ! wait "$MCSD_PID"; then
  fail "mcsd exited non-zero on SIGTERM"
fi
MCSD_PID=
grep -q "drained cleanly" "$LOG" || fail "no clean-drain message in log"

echo "smoke_mcsd: PASS"
