#!/usr/bin/env bash
# End-to-end smoke test for the sharded mcsd topology (docs/sharding.md):
# build, start three shard daemons plus a coordinator over them plus one
# unsharded daemon as the oracle, run the same query through both
# fronts, and require byte-identical data fields. Then check the
# coordinator's shard.* metrics moved, SIGTERM everything, and require
# clean drains (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."

HOST="${MCSD_HOST:-127.0.0.1}"
COORD_PORT="${MCSD_COORD_PORT:-18090}"
FULL_PORT="${MCSD_FULL_PORT:-18094}"
SHARD_PORTS=(18091 18092 18093)
COORD="http://$HOST:$COORD_PORT"
FULL="http://$HOST:$FULL_PORT"
BIN="$(mktemp -d)/mcsd"
LOGDIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$BIN" "$LOGDIR"
}
trap cleanup EXIT

fail() {
  echo "smoke_shards: FAIL: $*" >&2
  for log in "$LOGDIR"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

# Every daemon generates the same deterministic table; the shards slice
# it by -shard-index, the coordinator and the oracle keep it whole.
TABLE_FLAGS=(-tables tpch -tablerows 8000 -seed 1 -model builtin -workers 2 -max-concurrent 2 -drain-timeout 20s)

echo "smoke_shards: building mcsd"
go build -o "$BIN" ./cmd/mcsd

SHARD_URLS=""
for i in 0 1 2; do
  port=${SHARD_PORTS[$i]}
  echo "smoke_shards: starting shard $i/3 on :$port"
  "$BIN" -addr "$HOST:$port" "${TABLE_FLAGS[@]}" \
    -shard-index "$i" -shard-count 3 >"$LOGDIR/shard$i.log" 2>&1 &
  PIDS+=($!)
  SHARD_URLS="${SHARD_URLS:+$SHARD_URLS,}http://$HOST:$port"
done

echo "smoke_shards: starting the unsharded oracle daemon on :$FULL_PORT"
"$BIN" -addr "$HOST:$FULL_PORT" "${TABLE_FLAGS[@]}" >"$LOGDIR/full.log" 2>&1 &
PIDS+=($!)

echo "smoke_shards: starting the coordinator on :$COORD_PORT over $SHARD_URLS"
"$BIN" -addr "$HOST:$COORD_PORT" "${TABLE_FLAGS[@]}" \
  -shards "$SHARD_URLS" >"$LOGDIR/coord.log" 2>&1 &
PIDS+=($!)

wait_ready() {
  local base=$1 name=$2
  for _ in $(seq 1 100); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  fail "$name never became healthy at $base"
}
for i in 0 1 2; do wait_ready "http://$HOST:${SHARD_PORTS[$i]}" "shard $i"; done
wait_ready "$FULL" "oracle daemon"
wait_ready "$COORD" "coordinator"

grep -q "shard 0/3 serves" "$LOGDIR/shard0.log" || fail "shard 0 did not log its range"
grep -q "coordinating .* over 3 shards" "$LOGDIR/coord.log" || fail "coordinator did not log its topology"

QUERY='{"table":"tpch_wide","kind":"groupby","sort_cols":[{"name":"p_brand"},{"name":"p_type"},{"name":"p_size"}],"filters":[{"col":"p_size","op":"neq","const":15}],"agg":{"kind":"count"},"order_by_agg":true,"workers":2}'

run_query() {
  local base=$1 job state
  job=$(curl -fsS "$base/query" -d "$QUERY" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
  [[ -n "$job" ]] || fail "submit to $base returned no job_id"
  for _ in $(seq 1 200); do
    state=$(curl -fsS "$base/jobs/$job" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$state" in
      done) curl -fsS "$base/jobs/$job/result"; return 0 ;;
      failed) fail "job $job on $base failed: $(curl -fsS "$base/jobs/$job")" ;;
    esac
    sleep 0.1
  done
  fail "job $job on $base did not finish"
}

# canon keeps only the data fields (rows through row_oids) — job ids,
# plans, and timings legitimately differ between the two fronts.
canon() {
  tr -d ' \n' | sed -e 's/.*"rows":/"rows":/' -e 's/,"workers":.*//' -e 's/,"plan":.*//'
}

echo "smoke_shards: querying the coordinator and the oracle daemon"
GOT=$(run_query "$COORD" | canon)
WANT=$(run_query "$FULL" | canon)
[[ -n "$WANT" ]] || fail "oracle produced no data fields"
if [[ "$GOT" != "$WANT" ]]; then
  fail "coordinator result diverges from the unsharded daemon:
  coordinator: $GOT
  oracle:      $WANT"
fi
echo "smoke_shards: 3-shard result is byte-identical to the unsharded daemon"

echo "smoke_shards: checking coordinator /metrics for shard counters"
METRICS=$(curl -fsS "$COORD/metrics" | tr -d ' \n')
FANOUT=$(printf '%s' "$METRICS" | sed -n 's/.*"name":"shard\.fanout_subqueries","value":\([0-9]*\).*/\1/p')
[[ -n "$FANOUT" && "$FANOUT" -ge 3 ]] || fail "shard.fanout_subqueries=$FANOUT, want >= 3"

echo "smoke_shards: draining everything with SIGTERM"
for pid in "${PIDS[@]}"; do kill -TERM "$pid"; done
for pid in "${PIDS[@]}"; do
  if ! wait "$pid"; then fail "a daemon exited non-zero on SIGTERM"; fi
done
PIDS=()
for log in "$LOGDIR"/*.log; do
  grep -q "drained cleanly" "$log" || fail "no clean-drain message in $log"
done

echo "smoke_shards: PASS"
